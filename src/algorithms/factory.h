// Unified factory over all stream perturbation algorithms, used by the
// benchmark harness, the examples, and downstream applications that select
// an algorithm by name or enum.
#ifndef CAPP_ALGORITHMS_FACTORY_H_
#define CAPP_ALGORITHMS_FACTORY_H_

#include <memory>
#include <string_view>

#include "algorithms/perturber.h"
#include "mechanisms/mechanism.h"

namespace capp {

/// Every stream algorithm in the library.
enum class AlgorithmKind {
  kSwDirect,  ///< SW-direct baseline.
  kIpp,       ///< Iterative Perturbation Parameterization.
  kApp,       ///< Accumulated Perturbation Parameterization.
  kCapp,      ///< Clipped APP (the paper's flagship).
  kBaSw,      ///< Budget absorption + SW baseline.
  kTopl,      ///< ToPL baseline (SW range learning + HM).
  kSampling,  ///< Naive sampling baseline (SW over segment means).
  kAppS,      ///< APP with sampling.
  kCappS,     ///< CAPP with sampling.
};

/// Short display name of an algorithm ("sw-direct", "ipp", ...).
std::string_view AlgorithmKindName(AlgorithmKind kind);

/// Parses a display name back into an AlgorithmKind.
Result<AlgorithmKind> ParseAlgorithmKind(std::string_view name);

/// Creates the algorithm with default sub-options. Sampling-based kinds
/// choose n_s by the Section V criterion at perturbation time.
Result<std::unique_ptr<StreamPerturber>> CreatePerturber(
    AlgorithmKind kind, PerturberOptions options);

/// Variant of the non-sampling parameterized kinds running over an
/// alternative mechanism (Fig. 9 study). Only kSwDirect, kIpp and kApp
/// support non-SW mechanisms.
Result<std::unique_ptr<StreamPerturber>> CreatePerturberWithMechanism(
    AlgorithmKind kind, PerturberOptions options, MechanismKind mechanism);

}  // namespace capp

#endif  // CAPP_ALGORITHMS_FACTORY_H_
