#include "algorithms/app.h"

#include "core/math_utils.h"

namespace capp {

Result<std::unique_ptr<App>> App::Create(PerturberOptions options,
                                         MechanismKind mechanism) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options));
  const double eps_slot = options.epsilon / options.window;
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<Mechanism> mech,
                        CreateMechanism(mechanism, eps_slot));
  std::string name = mechanism == MechanismKind::kSquareWave
                         ? std::string("app")
                         : std::string(MechanismKindName(mechanism)) + "-app";
  return std::unique_ptr<App>(
      new App(options, std::move(mech), std::move(name)));
}

double App::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  RecordSpend(mechanism_->epsilon());
  // Algorithm 1 line 4: x^I_t = truncate(x_t + D, [0,1]).
  const double input = Clamp(x + accumulated_deviation_, 0.0, 1.0);
  const double y = mechanism_->Perturb(map_.ToMechanism(input), rng);
  const double report = map_.FromMechanism(y);
  // Lines 6-7: d_t = x_t - x'_t;  D += d_t.
  accumulated_deviation_ += x - report;
  return report;
}

}  // namespace capp
