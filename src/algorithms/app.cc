#include "algorithms/app.h"

#include "core/math_utils.h"
#include "mechanisms/square_wave.h"

namespace capp {

Result<std::unique_ptr<App>> App::Create(PerturberOptions options,
                                         MechanismKind mechanism) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options));
  const double eps_slot = options.epsilon / options.window;
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<Mechanism> mech,
                        CreateMechanism(mechanism, eps_slot));
  std::string name = mechanism == MechanismKind::kSquareWave
                         ? std::string("app")
                         : std::string(MechanismKindName(mechanism)) + "-app";
  return std::unique_ptr<App>(
      new App(options, std::move(mech), std::move(name)));
}

double App::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  RecordSpend(mechanism_->epsilon());
  // Algorithm 1 line 4: x^I_t = truncate(x_t + D, [0,1]).
  const double input = Clamp(x + accumulated_deviation_, 0.0, 1.0);
  const double y = mechanism_->Perturb(map_.ToMechanism(input), rng);
  const double report = map_.FromMechanism(y);
  // Lines 6-7: d_t = x_t - x'_t;  D += d_t.
  accumulated_deviation_ += x - report;
  return report;
}

void App::DoProcessChunk(std::span<const double> in, std::span<double> out,
                         Rng& rng) {
  const std::optional<SwBatchPlan> plan = PlanSwBatch(mechanism_.get());
  if (!plan) {
    StreamPerturber::DoProcessChunk(in, out, rng);
    return;
  }
  RecordSpendRun(in.size(), mechanism_->epsilon());
  const SwParams params = plan->params;
  const double near_mass = plan->near_mass;
  internal::ForEachSwSlot(
      in, out, rng, [&](double raw, double u1, double u2) {
        const double x = SanitizeUnitValue(raw);
        const double input =
            Clamp(x + accumulated_deviation_, 0.0, 1.0);
        // DomainMap is the identity for SW (input domain [0,1]); see the
        // IPP chunk loop for the bit-identity argument.
        const double report =
            SwSampleFromUniforms(params, near_mass, input, u1, u2);
        accumulated_deviation_ += x - report;
        return report;
      });
  AdvanceSlots(in.size());
}

}  // namespace capp
