// ToPL baseline (Wang et al., CCS 2021: "Continuous Release of Data Streams
// under both Centralized and Local Differential Privacy"), as used by the
// paper's Table I comparison.
//
// ToPL splits the budget into two phases:
//   1. Range learning: Square Wave reports (per-slot budget
//      range_fraction * eps / w) over the first `window` slots are fed to
//      the EM estimator; a high quantile of the reconstructed distribution
//      becomes the clipping threshold theta.
//   2. Publication: every slot perturbs min(x, theta)/theta, affinely mapped
//      to [-1, 1], with the Hybrid Mechanism at per-slot budget
//      (1 - range_fraction) * eps / w, and reports the rescaled output.
// During phase 1 the slot's SW report doubles as the published value.
//
// HM's output range is +/-C with C ~ 4w/eps at these budgets (e.g. [-80, 80]
// for w = 20, eps = 1), which reproduces the paper's observation that ToPL's
// mean-estimation MSE is orders of magnitude above the SW-based algorithms.
#ifndef CAPP_ALGORITHMS_TOPL_H_
#define CAPP_ALGORITHMS_TOPL_H_

#include <memory>
#include <string_view>
#include <vector>

#include "algorithms/perturber.h"
#include "mechanisms/hybrid.h"
#include "mechanisms/square_wave.h"
#include "mechanisms/sw_em.h"

namespace capp {

/// Options specific to ToPL.
struct ToplOptions {
  /// Shared stream options (total window budget, w).
  PerturberOptions base;
  /// Fraction of the budget used for range learning. In (0, 1).
  double range_fraction = 0.5;
  /// Quantile of the reconstructed distribution used as threshold theta.
  double threshold_quantile = 0.98;
  /// Histogram resolution of the EM reconstruction.
  int em_buckets = 32;
  /// Number of leading slots spent on range learning; 0 means one window
  /// (the default). More slots give the EM a larger sample.
  int range_slots = 0;
};

/// The ToPL baseline.
class Topl final : public StreamPerturber {
 public:
  static Result<std::unique_ptr<Topl>> Create(ToplOptions options);

  /// Convenience with default phase split and quantile.
  static Result<std::unique_ptr<Topl>> Create(PerturberOptions options) {
    return Create(ToplOptions{options, 0.5, 0.98, 32, 0});
  }

  std::string_view name() const override { return "topl"; }

  /// Learned clipping threshold (1.0 until phase 1 completes).
  double threshold() const { return threshold_; }
  /// True once range learning has finished.
  bool range_learned() const { return range_learned_; }

 protected:
  double DoProcessValue(double x, Rng& rng) override;
  void DoReset() override;

 private:
  Topl(ToplOptions options, SquareWave range_sw, HybridMechanism publish_hm,
       SwDistributionEstimator estimator)
      : StreamPerturber(options.base), opts_(options),
        range_sw_(std::move(range_sw)), publish_hm_(std::move(publish_hm)),
        estimator_(std::move(estimator)) {}

  void FinishRangeLearning();

  ToplOptions opts_;
  SquareWave range_sw_;
  HybridMechanism publish_hm_;
  SwDistributionEstimator estimator_;
  std::vector<double> phase1_reports_;
  double threshold_ = 1.0;
  bool range_learned_ = false;
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_TOPL_H_
