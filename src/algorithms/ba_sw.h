// BA-SW baseline: budget absorption (Kellaris et al., VLDB 2014; local
// variant following LDP-IDS, SIGMOD 2022) combined with the Square Wave
// mechanism.
//
// The window budget is split into a dissimilarity half eps_1 and a
// publication half eps_2 (the fractions are configurable). Every slot spends
// eps_1/w on a Laplace-perturbed dissimilarity between the current value and
// the last released value (sensitivity 1 over [0,1]). If the (noisy)
// dissimilarity does not exceed the expected publication error, the slot
// *skips*: the last release is re-used, and the slot's publication allowance
// eps_2/w is banked. When a slot publishes, it spends its own allowance plus
// everything banked (capped at w allowances total), and the following m-1
// slots' allowances are nullified, where m is the number of allowances
// consumed -- Kellaris' absorption rule, which keeps every w-window's
// publication spend at most eps_2.
//
// On streams with long constant runs (the paper's Power dataset) the skip
// path is frequently correct, so the re-used releases are accurate and the
// absorbed budget makes actual publications much less noisy -- reproducing
// the paper's observation that BA-SW wins on Power at large epsilon while
// being the worst performer elsewhere (the dissimilarity estimate is noise-
// dominated for a single user at small budgets).
#ifndef CAPP_ALGORITHMS_BA_SW_H_
#define CAPP_ALGORITHMS_BA_SW_H_

#include <memory>
#include <string_view>

#include "algorithms/perturber.h"
#include "mechanisms/square_wave.h"

namespace capp {

/// How the publish-vs-skip decision observes the dissimilarity.
enum class BaSwDecisionMode {
  /// Single-user local decision: the dissimilarity is Laplace-perturbed
  /// with the slot's dissimilarity budget. At stream budgets the noise
  /// dominates, which is exactly why the paper finds BA-SW the weakest
  /// baseline on single-user data.
  kLocalLaplace,
  /// Population-coordinated decision (LDP-IDS): the server averages the
  /// eps_1-perturbed dissimilarities of n users; for large n the average
  /// converges to the true dissimilarity. This implements that limit --
  /// the decision uses the exact dissimilarity while each user still
  /// spends the dissimilarity budget. Use for multi-user datasets (the
  /// paper's Taxi/Power runs) only.
  kPopulationCoordinated,
};

/// Options specific to BA-SW.
struct BaSwOptions {
  /// Shared stream options (total window budget, w).
  PerturberOptions base;
  /// Fraction of the window budget reserved for dissimilarity estimation;
  /// the remainder funds publications. Must be in (0, 1).
  double dissimilarity_fraction = 0.5;
  /// Decision observation model (see BaSwDecisionMode).
  BaSwDecisionMode decision_mode = BaSwDecisionMode::kLocalLaplace;
};

/// The BA-SW baseline.
class BaSw final : public StreamPerturber {
 public:
  static Result<std::unique_ptr<BaSw>> Create(BaSwOptions options);

  /// Convenience with the default 50/50 split and local decisions.
  static Result<std::unique_ptr<BaSw>> Create(PerturberOptions options) {
    return Create(BaSwOptions{options, 0.5, BaSwDecisionMode::kLocalLaplace});
  }

  std::string_view name() const override { return "ba-sw"; }

  /// Number of slots that skipped (re-used the previous release).
  size_t skipped_slots() const { return skipped_; }
  /// Number of slots that published a fresh perturbed value.
  size_t published_slots() const { return published_; }

 protected:
  double DoProcessValue(double x, Rng& rng) override;
  void DoReset() override;

 private:
  BaSw(PerturberOptions options, double dissim_fraction,
       BaSwDecisionMode decision_mode)
      : StreamPerturber(options), dissim_fraction_(dissim_fraction),
        decision_mode_(decision_mode) {}

  double eps_dissim_slot() const {
    return dissim_fraction_ * options().epsilon / options().window;
  }
  double eps_publish_slot() const {
    return (1.0 - dissim_fraction_) * options().epsilon / options().window;
  }

  double dissim_fraction_;
  BaSwDecisionMode decision_mode_;
  double banked_ = 0.0;        // accumulated unused publication allowances
  int nullified_ = 0;          // slots that must skip (allowance consumed)
  bool has_release_ = false;
  double last_release_ = 0.0;
  size_t skipped_ = 0;
  size_t published_ = 0;
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_BA_SW_H_
