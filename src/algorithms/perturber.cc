#include "algorithms/perturber.h"

#include <cmath>

#include "core/check.h"

namespace capp {

Status ValidatePerturberOptions(const PerturberOptions& options) {
  if (!std::isfinite(options.epsilon) || options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (options.epsilon > 50.0) {
    return Status::InvalidArgument("epsilon exceeds supported maximum (50)");
  }
  if (options.window < 1) {
    return Status::InvalidArgument("window must be >= 1");
  }
  return Status::OK();
}

double SanitizeUnitValue(double x) {
  if (!std::isfinite(x)) return 0.5;
  if (x < 0.0) return 0.0;
  if (x > 1.0) return 1.0;
  return x;
}

double StreamPerturber::ProcessValue(double x, Rng& rng) {
  CAPP_CHECK(supports_online());
  const double report = DoProcessValue(SanitizeUnitValue(x), rng);
  ++slot_;
  return report;
}

std::vector<double> StreamPerturber::PerturbSequence(
    std::span<const double> xs, Rng& rng) {
  return DoPerturbSequence(xs, rng);
}

std::vector<double> StreamPerturber::DoPerturbSequence(
    std::span<const double> xs, Rng& rng) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(ProcessValue(x, rng));
  return out;
}

void StreamPerturber::Reset() {
  slot_ = 0;
  DoReset();
}

void StreamPerturber::RecordSpend(double epsilon) {
  if (accountant_ != nullptr) accountant_->Record(slot_, epsilon);
}

void StreamPerturber::RecordSpendAt(size_t slot, double epsilon) {
  if (accountant_ != nullptr) accountant_->Record(slot, epsilon);
}

}  // namespace capp
