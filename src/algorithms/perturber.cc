#include "algorithms/perturber.h"

#include "core/check.h"

namespace capp {

Status ValidatePerturberOptions(const PerturberOptions& options) {
  if (!std::isfinite(options.epsilon) || options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  if (options.epsilon > 50.0) {
    return Status::InvalidArgument("epsilon exceeds supported maximum (50)");
  }
  if (options.window < 1) {
    return Status::InvalidArgument("window must be >= 1");
  }
  return Status::OK();
}

double StreamPerturber::ProcessValue(double x, Rng& rng) {
  CAPP_CHECK(supports_online());
  const double report = DoProcessValue(SanitizeUnitValue(x), rng);
  ++slot_;
  return report;
}

void StreamPerturber::ProcessChunk(std::span<const double> in,
                                   std::span<double> out, Rng& rng) {
  CAPP_CHECK(supports_online());
  CAPP_CHECK(in.size() == out.size());
  DoProcessChunk(in, out, rng);
}

void StreamPerturber::DoProcessChunk(std::span<const double> in,
                                     std::span<double> out, Rng& rng) {
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = DoProcessValue(SanitizeUnitValue(in[i]), rng);
    ++slot_;
  }
}

std::vector<double> StreamPerturber::PerturbSequence(
    std::span<const double> xs, Rng& rng) {
  return DoPerturbSequence(xs, rng);
}

std::vector<double> StreamPerturber::DoPerturbSequence(
    std::span<const double> xs, Rng& rng) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(ProcessValue(x, rng));
  return out;
}

void StreamPerturber::Reset() {
  slot_ = 0;
  DoReset();
}

void StreamPerturber::RecordSpend(double epsilon) {
  if (accountant_ != nullptr) accountant_->Record(slot_, epsilon);
}

void StreamPerturber::RecordSpendRun(size_t n, double epsilon) {
  if (accountant_ != nullptr) accountant_->RecordRun(slot_, n, epsilon);
}

void StreamPerturber::RecordSpendAt(size_t slot, double epsilon) {
  if (accountant_ != nullptr) accountant_->Record(slot, epsilon);
}

}  // namespace capp
