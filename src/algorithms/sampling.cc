#include "algorithms/sampling.h"

#include <algorithm>

#include "algorithms/app.h"
#include "algorithms/capp.h"
#include "algorithms/ipp.h"
#include "algorithms/sw_direct.h"
#include "core/check.h"
#include "core/math_utils.h"

namespace capp {

std::string_view PpKindName(PpKind kind) {
  switch (kind) {
    case PpKind::kDirect:
      return "sampling";
    case PpKind::kIpp:
      return "ipp-s";
    case PpKind::kApp:
      return "app-s";
    case PpKind::kCapp:
      return "capp-s";
  }
  return "unknown";
}

Result<std::unique_ptr<PpSampler>> PpSampler::Create(SamplingOptions options,
                                                     PpKind inner) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options.base));
  if (options.ns.has_value() && *options.ns < 1) {
    return Status::InvalidArgument("ns must be >= 1 when given");
  }
  return std::unique_ptr<PpSampler>(new PpSampler(
      options, inner, std::string(PpKindName(inner))));
}

double PpSampler::DoProcessValue(double /*x*/, Rng& /*rng*/) {
  CAPP_CHECK(false && "PP-S operates on whole subsequences");
  return 0.0;
}

std::vector<double> PpSampler::DoPerturbSequence(std::span<const double> xs,
                                                 Rng& rng) {
  const int q = static_cast<int>(xs.size());
  if (q == 0) return {};
  const int w = options().window;
  const double epsilon = options().epsilon;

  // Segmentation: explicit ns or the Section V selection criterion.
  NsSelection sel;
  if (opts_.ns.has_value()) {
    sel.ns = std::min(*opts_.ns, q);
    sel.segment_length = q / sel.ns;
    sel.uploads_per_window =
        std::min(sel.ns, (w - 1) / sel.segment_length + 1);
    sel.epsilon_per_upload = epsilon / sel.uploads_per_window;
  } else {
    auto selected = SelectSampleCount(epsilon, w, q);
    CAPP_CHECK(selected.ok());
    sel = *selected;
  }
  if (opts_.full_budget_per_upload) {
    sel.epsilon_per_upload = epsilon;
  }
  last_selection_ = sel;

  // Inner PP algorithm over segment means: per-upload budget, window 1
  // (each upload independently gets eps_u; window accounting for the
  // full-length stream is handled below).
  PerturberOptions inner_options;
  inner_options.epsilon = sel.epsilon_per_upload;
  inner_options.window = 1;
  std::unique_ptr<StreamPerturber> pp;
  switch (inner_) {
    case PpKind::kDirect: {
      auto created = MechanismDirect::Create(inner_options);
      CAPP_CHECK(created.ok());
      pp = std::move(created).value();
      break;
    }
    case PpKind::kIpp: {
      auto created = Ipp::Create(inner_options);
      CAPP_CHECK(created.ok());
      pp = std::move(created).value();
      break;
    }
    case PpKind::kApp: {
      auto created = App::Create(inner_options);
      CAPP_CHECK(created.ok());
      pp = std::move(created).value();
      break;
    }
    case PpKind::kCapp: {
      auto created = Capp::Create(inner_options);
      CAPP_CHECK(created.ok());
      pp = std::move(created).value();
      break;
    }
  }

  // Perturb each segment's mean, replicate across the segment.
  std::vector<double> out;
  out.reserve(xs.size());
  const size_t base_slot = slots_processed();
  int start = 0;
  for (int r = 0; r < sel.ns; ++r) {
    // The last segment absorbs the remainder (paper footnote 1).
    const int end =
        (r == sel.ns - 1) ? q : start + sel.segment_length;
    KahanSum segment_sum;
    for (int t = start; t < end; ++t) {
      segment_sum.Add(SanitizeUnitValue(xs[t]));
    }
    const double segment_mean =
        segment_sum.Total() / static_cast<double>(end - start);
    const double report = pp->ProcessValue(segment_mean, rng);
    // Upload happens at the segment's first slot.
    RecordSpendAt(base_slot + static_cast<size_t>(start),
                  sel.epsilon_per_upload);
    for (int t = start; t < end; ++t) out.push_back(report);
    start = end;
  }
  AdvanceSlots(xs.size());
  return out;
}

}  // namespace capp
