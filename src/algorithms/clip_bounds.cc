#include "algorithms/clip_bounds.h"

#include <cmath>
#include <limits>

#include "core/check.h"
#include "core/math_utils.h"

namespace capp {

double SwSensitivityError(const SquareWave& sw) {
  // Worst case x = 1 (the paper assumes unknown data and takes the maximum
  // deviation between input and expected output).
  return std::exp(1.0 - sw.OutputMean(1.0)) - 1.0;
}

double SwDiscardingError(const SquareWave& sw) {
  // D_x = x - SW(x) at fixed x has Var(D_x) = Var(SW(x)).
  return std::sqrt(sw.OutputVariance(1.0));
}

Result<ClipBounds> SelectClipBounds(double epsilon_per_slot) {
  CAPP_ASSIGN_OR_RETURN(SquareWave sw,
                        SquareWave::CreateCached(epsilon_per_slot));
  ClipBounds bounds;
  bounds.sensitivity_error = SwSensitivityError(sw);
  bounds.discarding_error = SwDiscardingError(sw);
  bounds.raw_delta = bounds.sensitivity_error - bounds.discarding_error;
  bounds.delta = Clamp(bounds.raw_delta, kMinDelta, kMaxDelta);
  bounds.l = 0.0 - bounds.delta;
  bounds.u = 1.0 + bounds.delta;
  CAPP_DCHECK(bounds.u > bounds.l);
  return bounds;
}

Result<ClipBounds> ClipBoundsFromDelta(double delta) {
  if (!std::isfinite(delta) || delta <= -0.5) {
    return Status::InvalidArgument(
        "delta must be finite and > -0.5 (u - l = 1 + 2*delta must be > 0)");
  }
  ClipBounds bounds;
  bounds.delta = delta;
  bounds.raw_delta = delta;
  bounds.l = 0.0 - delta;
  bounds.u = 1.0 + delta;
  return bounds;
}

Result<ClipBounds> SelectClipBoundsProxy(double epsilon_per_slot,
                                         double lambda) {
  if (!(lambda >= 0.0)) {
    return Status::InvalidArgument("lambda must be >= 0");
  }
  CAPP_ASSIGN_OR_RETURN(SquareWave sw,
                        SquareWave::CreateCached(epsilon_per_slot));
  const double mid_variance = sw.OutputVariance(0.5);
  ClipBounds best;
  double best_proxy = std::numeric_limits<double>::infinity();
  // Grid over the paper's recommended stability band.
  for (double delta = kMinDelta; delta <= kMaxDelta + 1e-9; delta += 0.05) {
    const double width = 1.0 + 2.0 * delta;
    const double truncation = delta < 0.0 ? -delta : 0.0;
    const double proxy = width * width * mid_variance +
                         lambda * 2.0 * truncation * truncation *
                             truncation / 3.0;
    if (proxy < best_proxy) {
      best_proxy = proxy;
      best.delta = delta;
    }
  }
  best.raw_delta = best.delta;
  best.sensitivity_error = SwSensitivityError(sw);
  best.discarding_error = SwDiscardingError(sw);
  best.l = 0.0 - best.delta;
  best.u = 1.0 + best.delta;
  return best;
}

double PaperExpectedDx(const SwParams& params, double x) {
  const double b = params.b;
  const double q = params.q;
  return q * ((1.0 + 2.0 * b) * x - (b + 0.5));
}

double PaperVarDx(const SwParams& params) {
  const double b = params.b;
  const double p = params.p;
  const double q = params.q;
  // Section IV-B: Var(D_x) = 2b^3 p / 3 - b^2 q^2 + b^2 q - b q^2 + b q
  //                          - q^2 / 4 + q / 3.
  return 2.0 * b * b * b * p / 3.0 - b * b * q * q + b * b * q - b * q * q +
         b * q - q * q / 4.0 + q / 3.0;
}

double PaperMuAtOne(const SwParams& params) {
  const double b = params.b;
  const double p = params.p;
  const double q = params.q;
  // Section V: mu = 2bp - bq + q/2.
  return 2.0 * b * p - b * q + q / 2.0;
}

}  // namespace capp
