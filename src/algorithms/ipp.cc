#include "algorithms/ipp.h"

#include "core/math_utils.h"

namespace capp {

Result<std::unique_ptr<Ipp>> Ipp::Create(PerturberOptions options,
                                         MechanismKind mechanism) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options));
  const double eps_slot = options.epsilon / options.window;
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<Mechanism> mech,
                        CreateMechanism(mechanism, eps_slot));
  std::string name = mechanism == MechanismKind::kSquareWave
                         ? std::string("ipp")
                         : std::string(MechanismKindName(mechanism)) + "-ipp";
  return std::unique_ptr<Ipp>(
      new Ipp(options, std::move(mech), std::move(name)));
}

double Ipp::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  RecordSpend(mechanism_->epsilon());
  // Input value: current truth corrected by the last slot's deviation,
  // clipped back into the data domain (Section III-C).
  const double input = Clamp(x + last_deviation_, 0.0, 1.0);
  const double y = mechanism_->Perturb(map_.ToMechanism(input), rng);
  const double report = map_.FromMechanism(y);
  last_deviation_ = x - report;
  return report;
}

}  // namespace capp
