#include "algorithms/ipp.h"

#include "core/math_utils.h"
#include "mechanisms/square_wave.h"

namespace capp {

Result<std::unique_ptr<Ipp>> Ipp::Create(PerturberOptions options,
                                         MechanismKind mechanism) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options));
  const double eps_slot = options.epsilon / options.window;
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<Mechanism> mech,
                        CreateMechanism(mechanism, eps_slot));
  std::string name = mechanism == MechanismKind::kSquareWave
                         ? std::string("ipp")
                         : std::string(MechanismKindName(mechanism)) + "-ipp";
  return std::unique_ptr<Ipp>(
      new Ipp(options, std::move(mech), std::move(name)));
}

double Ipp::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  RecordSpend(mechanism_->epsilon());
  // Input value: current truth corrected by the last slot's deviation,
  // clipped back into the data domain (Section III-C).
  const double input = Clamp(x + last_deviation_, 0.0, 1.0);
  const double y = mechanism_->Perturb(map_.ToMechanism(input), rng);
  const double report = map_.FromMechanism(y);
  last_deviation_ = x - report;
  return report;
}

void Ipp::DoProcessChunk(std::span<const double> in, std::span<double> out,
                         Rng& rng) {
  const std::optional<SwBatchPlan> plan = PlanSwBatch(mechanism_.get());
  if (!plan) {
    StreamPerturber::DoProcessChunk(in, out, rng);
    return;
  }
  RecordSpendRun(in.size(), mechanism_->epsilon());
  const SwParams params = plan->params;
  const double near_mass = plan->near_mass;
  internal::ForEachSwSlot(
      in, out, rng, [&](double raw, double u1, double u2) {
        const double x = SanitizeUnitValue(raw);
        const double input = Clamp(x + last_deviation_, 0.0, 1.0);
        // SW's input domain is [0,1], so DomainMap is exactly the identity
        // here: skipping it removes a dependent mul/add/div from the
        // feedback chain without changing a bit (x*1.0, y-0.0, and /1.0
        // are exact; the +-0.0 corner yields identical sampler output).
        const double report =
            SwSampleFromUniforms(params, near_mass, input, u1, u2);
        last_deviation_ = x - report;
        return report;
      });
  AdvanceSlots(in.size());
}

}  // namespace capp
