// Direct per-slot perturbation baseline ("SW-direct" in the paper when the
// mechanism is Square Wave). Each slot's value is perturbed independently
// with budget epsilon/w -- the straw-man every parameterized algorithm is
// compared against. The mechanism is pluggable (Laplace-direct, SR-direct,
// PM-direct of Fig. 9); data in [0,1] is affinely mapped into the
// mechanism's input domain and the report mapped back.
#ifndef CAPP_ALGORITHMS_SW_DIRECT_H_
#define CAPP_ALGORITHMS_SW_DIRECT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algorithms/perturber.h"
#include "mechanisms/mechanism.h"

namespace capp {

/// Affine bijection between the data domain [0,1] and a mechanism's input
/// domain. Affine pre/post-processing does not affect LDP guarantees.
class DomainMap {
 public:
  explicit DomainMap(const Mechanism& mechanism)
      : lo_(mechanism.input_lo()), width_(mechanism.input_hi() -
                                          mechanism.input_lo()) {}

  /// [0,1] data value -> mechanism input.
  double ToMechanism(double x01) const { return lo_ + x01 * width_; }
  /// Mechanism output -> data scale (may exceed [0,1] for unbounded
  /// mechanisms; that is intended).
  double FromMechanism(double y) const { return (y - lo_) / width_; }

 private:
  double lo_;
  double width_;
};

/// Mechanism-direct stream perturbation (no parameterization).
class MechanismDirect final : public StreamPerturber {
 public:
  /// Creates a direct perturber; per-slot budget is epsilon/window.
  static Result<std::unique_ptr<MechanismDirect>> Create(
      PerturberOptions options,
      MechanismKind mechanism = MechanismKind::kSquareWave);

  std::string_view name() const override { return name_; }

  /// Per-slot privacy budget epsilon/w.
  double epsilon_per_slot() const { return mechanism_->epsilon(); }
  const Mechanism& mechanism() const { return *mechanism_; }

 protected:
  double DoProcessValue(double x, Rng& rng) override;
  /// No cross-slot state, so the whole chunk goes through
  /// Mechanism::PerturbBatch on a reused scratch buffer. Bit-identical to
  /// the scalar loop for every mechanism.
  void DoProcessChunk(std::span<const double> in, std::span<double> out,
                      Rng& rng) override;
  void DoReset() override {}

 private:
  MechanismDirect(PerturberOptions options,
                  std::unique_ptr<Mechanism> mechanism, std::string name)
      : StreamPerturber(options), mechanism_(std::move(mechanism)),
        map_(*mechanism_), name_(std::move(name)) {}

  std::unique_ptr<Mechanism> mechanism_;
  DomainMap map_;
  std::string name_;
  std::vector<double> chunk_scratch_;  // mapped inputs for PerturbBatch
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_SW_DIRECT_H_
