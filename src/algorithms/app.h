// Accumulated Perturbation Parameterization (APP), Algorithm 1 of the paper.
//
// Like IPP but the input carries the *accumulated* deviation of all previous
// slots:  D = sum_{s<t} (x_s - x'_s),  x^I_t = clip(x_t + D, [0,1]).
// The running total lets late slots repair the cumulative error of the
// whole prefix, which is why APP dominates IPP for subsequence-mean
// estimation (Lemma IV.2) while being slightly worse for point-wise stream
// shape (the paper's Fig. 5 discussion).
#ifndef CAPP_ALGORITHMS_APP_H_
#define CAPP_ALGORITHMS_APP_H_

#include <memory>
#include <string>
#include <string_view>

#include "algorithms/perturber.h"
#include "algorithms/sw_direct.h"
#include "mechanisms/mechanism.h"

namespace capp {

/// The APP algorithm; mechanism defaults to Square Wave.
class App final : public StreamPerturber {
 public:
  static Result<std::unique_ptr<App>> Create(
      PerturberOptions options,
      MechanismKind mechanism = MechanismKind::kSquareWave);

  std::string_view name() const override { return name_; }
  int publication_smoothing_window() const override { return 3; }

  /// Accumulated deviation D = sum of (x_s - x'_s) over processed slots.
  double accumulated_deviation() const { return accumulated_deviation_; }

 protected:
  double DoProcessValue(double x, Rng& rng) override;
  /// SW fast path: block-RNG + inline sampling (see square_wave.h);
  /// non-SW mechanisms fall back to the scalar loop. Bit-identical.
  void DoProcessChunk(std::span<const double> in, std::span<double> out,
                      Rng& rng) override;
  void DoReset() override { accumulated_deviation_ = 0.0; }

 private:
  App(PerturberOptions options, std::unique_ptr<Mechanism> mechanism,
      std::string name)
      : StreamPerturber(options), mechanism_(std::move(mechanism)),
        map_(*mechanism_), name_(std::move(name)) {}

  std::unique_ptr<Mechanism> mechanism_;
  DomainMap map_;
  std::string name_;
  double accumulated_deviation_ = 0.0;
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_APP_H_
