#include "algorithms/capp.h"

#include "core/math_utils.h"
#include "mechanisms/square_wave.h"

namespace capp {

Result<std::unique_ptr<Capp>> Capp::Create(CappOptions options,
                                           MechanismKind mechanism) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options.base));
  const double eps_slot = options.base.epsilon / options.base.window;
  ClipBounds bounds;
  if (options.delta.has_value()) {
    CAPP_ASSIGN_OR_RETURN(bounds, ClipBoundsFromDelta(*options.delta));
  } else if (mechanism == MechanismKind::kSquareWave) {
    CAPP_ASSIGN_OR_RETURN(bounds, SelectClipBounds(eps_slot));
  } else {
    return Status::InvalidArgument(
        "CAPP over non-SW mechanisms needs an explicit delta (the Eq.-11 "
        "selector is Square-Wave-specific)");
  }
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<Mechanism> mech,
                        CreateMechanism(mechanism, eps_slot));
  std::string name =
      mechanism == MechanismKind::kSquareWave
          ? std::string("capp")
          : std::string(MechanismKindName(mechanism)) + "-capp";
  return std::unique_ptr<Capp>(
      new Capp(options.base, std::move(mech), bounds, std::move(name)));
}

double Capp::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  RecordSpend(mechanism_->epsilon());
  // Algorithm 2 lines 5-6: input value with accumulated deviation, clipped
  // to [l, u].
  const double input = Clamp(x + accumulated_deviation_, bounds_.l,
                             bounds_.u);
  // Line 7: normalize [l,u] -> [0,1], then onto the mechanism's domain
  // (identity for SW).
  const double width = bounds_.u - bounds_.l;
  const double normalized = (input - bounds_.l) / width;
  // Line 8: perturb.
  const double y = mechanism_->Perturb(map_.ToMechanism(normalized), rng);
  // Line 9: denormalize back to [l, u] scale.
  const double report = map_.FromMechanism(y) * width + bounds_.l;
  // Lines 10-11: update the accumulated deviation.
  accumulated_deviation_ += x - report;
  return report;
}

void Capp::DoProcessChunk(std::span<const double> in, std::span<double> out,
                          Rng& rng) {
  const std::optional<SwBatchPlan> plan = PlanSwBatch(mechanism_.get());
  if (!plan) {
    StreamPerturber::DoProcessChunk(in, out, rng);
    return;
  }
  RecordSpendRun(in.size(), mechanism_->epsilon());
  const SwParams params = plan->params;
  const double near_mass = plan->near_mass;
  const double width = bounds_.u - bounds_.l;
  internal::ForEachSwSlot(
      in, out, rng, [&](double raw, double u1, double u2) {
        const double x = SanitizeUnitValue(raw);
        const double input = Clamp(x + accumulated_deviation_, bounds_.l,
                                   bounds_.u);
        const double normalized = (input - bounds_.l) / width;
        // DomainMap is the identity for SW (input domain [0,1]); see the
        // IPP chunk loop for the bit-identity argument.
        const double y =
            SwSampleFromUniforms(params, near_mass, normalized, u1, u2);
        const double report = y * width + bounds_.l;
        accumulated_deviation_ += x - report;
        return report;
      });
  AdvanceSlots(in.size());
}

}  // namespace capp
