#include "algorithms/factory.h"

#include "algorithms/app.h"
#include "algorithms/ba_sw.h"
#include "algorithms/capp.h"
#include "algorithms/clip_bounds.h"
#include "algorithms/ipp.h"
#include "algorithms/sampling.h"
#include "algorithms/sw_direct.h"
#include "algorithms/topl.h"

namespace capp {

std::string_view AlgorithmKindName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSwDirect:
      return "sw-direct";
    case AlgorithmKind::kIpp:
      return "ipp";
    case AlgorithmKind::kApp:
      return "app";
    case AlgorithmKind::kCapp:
      return "capp";
    case AlgorithmKind::kBaSw:
      return "ba-sw";
    case AlgorithmKind::kTopl:
      return "topl";
    case AlgorithmKind::kSampling:
      return "sampling";
    case AlgorithmKind::kAppS:
      return "app-s";
    case AlgorithmKind::kCappS:
      return "capp-s";
  }
  return "unknown";
}

Result<AlgorithmKind> ParseAlgorithmKind(std::string_view name) {
  for (AlgorithmKind kind :
       {AlgorithmKind::kSwDirect, AlgorithmKind::kIpp, AlgorithmKind::kApp,
        AlgorithmKind::kCapp, AlgorithmKind::kBaSw, AlgorithmKind::kTopl,
        AlgorithmKind::kSampling, AlgorithmKind::kAppS,
        AlgorithmKind::kCappS}) {
    if (AlgorithmKindName(kind) == name) return kind;
  }
  return Status::NotFound("unknown algorithm: " + std::string(name));
}

Result<std::unique_ptr<StreamPerturber>> CreatePerturber(
    AlgorithmKind kind, PerturberOptions options) {
  switch (kind) {
    case AlgorithmKind::kSwDirect: {
      CAPP_ASSIGN_OR_RETURN(auto p, MechanismDirect::Create(options));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kIpp: {
      CAPP_ASSIGN_OR_RETURN(auto p, Ipp::Create(options));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kApp: {
      CAPP_ASSIGN_OR_RETURN(auto p, App::Create(options));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kCapp: {
      CAPP_ASSIGN_OR_RETURN(auto p, Capp::Create(options));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kBaSw: {
      CAPP_ASSIGN_OR_RETURN(auto p, BaSw::Create(options));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kTopl: {
      CAPP_ASSIGN_OR_RETURN(auto p, Topl::Create(options));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kSampling: {
      CAPP_ASSIGN_OR_RETURN(
          auto p, PpSampler::Create(SamplingOptions{options, std::nullopt},
                                    PpKind::kDirect));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kAppS: {
      CAPP_ASSIGN_OR_RETURN(
          auto p, PpSampler::Create(SamplingOptions{options, std::nullopt},
                                    PpKind::kApp));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kCappS: {
      CAPP_ASSIGN_OR_RETURN(
          auto p, PpSampler::Create(SamplingOptions{options, std::nullopt},
                                    PpKind::kCapp));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
  }
  return Status::InvalidArgument("unknown algorithm kind");
}

Result<std::unique_ptr<StreamPerturber>> CreatePerturberWithMechanism(
    AlgorithmKind kind, PerturberOptions options, MechanismKind mechanism) {
  switch (kind) {
    case AlgorithmKind::kSwDirect: {
      CAPP_ASSIGN_OR_RETURN(auto p,
                            MechanismDirect::Create(options, mechanism));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kIpp: {
      CAPP_ASSIGN_OR_RETURN(auto p, Ipp::Create(options, mechanism));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kApp: {
      CAPP_ASSIGN_OR_RETURN(auto p, App::Create(options, mechanism));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    case AlgorithmKind::kCapp: {
      if (mechanism == MechanismKind::kSquareWave) {
        return CreatePerturber(kind, options);
      }
      // Non-SW CAPP needs an explicit clip interval; the paper gives no
      // default, so use the proxy selector's recommendation for the
      // per-slot budget as a reasonable starting interval.
      CAPP_ASSIGN_OR_RETURN(
          ClipBounds bounds,
          SelectClipBoundsProxy(options.epsilon / options.window));
      CAPP_ASSIGN_OR_RETURN(
          auto p, Capp::Create(CappOptions{options, bounds.delta},
                               mechanism));
      return std::unique_ptr<StreamPerturber>(std::move(p));
    }
    default:
      if (mechanism == MechanismKind::kSquareWave) {
        return CreatePerturber(kind, options);
      }
      return Status::Unimplemented(
          "only direct/ipp/app/capp support non-SW mechanisms");
  }
}

}  // namespace capp
