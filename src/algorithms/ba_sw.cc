#include "algorithms/ba_sw.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/math_utils.h"

namespace capp {

Result<std::unique_ptr<BaSw>> BaSw::Create(BaSwOptions options) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options.base));
  if (options.dissimilarity_fraction <= 0.0 ||
      options.dissimilarity_fraction >= 1.0) {
    return Status::InvalidArgument(
        "dissimilarity_fraction must be in (0, 1)");
  }
  return std::unique_ptr<BaSw>(new BaSw(
      options.base, options.dissimilarity_fraction, options.decision_mode));
}

void BaSw::DoReset() {
  banked_ = 0.0;
  nullified_ = 0;
  has_release_ = false;
  last_release_ = 0.0;
  skipped_ = 0;
  published_ = 0;
}

double BaSw::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  const double allowance = eps_publish_slot();

  // Nullified slots were pre-paid by an earlier absorbing publication;
  // they must skip and contribute no new allowance.
  if (nullified_ > 0) {
    --nullified_;
    ++skipped_;
    // The dissimilarity budget is still spent every slot in LDP-IDS;
    // keeping it uniform also keeps the ledger simple.
    RecordSpend(eps_dissim_slot());
    return has_release_ ? last_release_ : 0.5;
  }

  banked_ += allowance;
  // Cap the bank at w allowances so one publication can never exceed the
  // publication half of the window budget.
  banked_ = std::min(banked_, options().epsilon - options().epsilon *
                                  dissim_fraction_);

  // Dissimilarity test (skipped for the very first slot, which always
  // publishes): Laplace-perturbed |x - last_release| with sensitivity 1.
  RecordSpend(eps_dissim_slot());
  bool publish = true;
  if (has_release_) {
    // Local mode perturbs the dissimilarity (sensitivity 1 over [0,1]);
    // population mode models the LDP-IDS large-n limit where the server's
    // averaged estimate is noise-free (each user still pays eps_1/w).
    const double noise = decision_mode_ == BaSwDecisionMode::kLocalLaplace
                             ? rng.Laplace(1.0 / eps_dissim_slot())
                             : 0.0;
    const double noisy_dissim = std::fabs(x - last_release_) + noise;
    // Expected error of publishing now with the banked budget: the standard
    // deviation of SW at the banked budget (mid-domain input).
    // Cached: banked budgets cycle through a small set of allowance
    // multiples, and re-deriving exp/expm1 per slot dominated BA-SW's cost.
    auto sw_or = SquareWave::CreateCached(std::max(banked_, 1e-8));
    CAPP_CHECK(sw_or.ok());
    const double publish_error = std::sqrt(sw_or->OutputVariance(0.5));
    publish = noisy_dissim > publish_error;
  }

  if (!publish) {
    ++skipped_;
    return last_release_;
  }

  // Publish with everything banked; nullify the slots whose allowances we
  // consumed beyond our own.
  const double eps_pub = banked_;
  banked_ = 0.0;
  const int multiples =
      std::max(1, static_cast<int>(std::floor(eps_pub / allowance + 1e-9)));
  nullified_ = multiples - 1;
  RecordSpend(eps_pub);
  auto sw_or = SquareWave::CreateCached(eps_pub);
  CAPP_CHECK(sw_or.ok());
  const double report = sw_or->Perturb(x, rng);
  last_release_ = report;
  has_release_ = true;
  ++published_;
  return report;
}

}  // namespace capp
