#include "algorithms/sw_direct.h"

#include "core/math_utils.h"

namespace capp {

Result<std::unique_ptr<MechanismDirect>> MechanismDirect::Create(
    PerturberOptions options, MechanismKind mechanism) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options));
  const double eps_slot = options.epsilon / options.window;
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<Mechanism> mech,
                        CreateMechanism(mechanism, eps_slot));
  std::string name = std::string(MechanismKindName(mechanism)) + "-direct";
  return std::unique_ptr<MechanismDirect>(
      new MechanismDirect(options, std::move(mech), std::move(name)));
}

double MechanismDirect::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  RecordSpend(mechanism_->epsilon());
  const double y = mechanism_->Perturb(map_.ToMechanism(x), rng);
  return map_.FromMechanism(y);
}

void MechanismDirect::DoProcessChunk(std::span<const double> in,
                                     std::span<double> out, Rng& rng) {
  RecordSpendRun(in.size(), mechanism_->epsilon());
  chunk_scratch_.resize(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    chunk_scratch_[i] =
        map_.ToMechanism(Clamp(SanitizeUnitValue(in[i]), 0.0, 1.0));
  }
  mechanism_->PerturbBatch(chunk_scratch_, out, rng);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = map_.FromMechanism(out[i]);
  }
  AdvanceSlots(in.size());
}

}  // namespace capp
