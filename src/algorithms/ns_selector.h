// Sample-count selection for PP-S (Section V, "The choice of n_s").
//
// Splitting a query interval of q slots into n_s segments of length
// L = floor(q / n_s) places uploads L slots apart inside the query, so at
// most n_w = min(n_s, floor((w-1)/L) + 1) uploads land inside any w-window
// and each upload may spend eps / n_w. Fewer segments -> bigger
// per-upload budget but coarser stream shape. The paper selects n_s by
// minimizing  n_s * Var(n_s, eps_u)  where Var is the variance of the
// *sample variance* of n_s SW outputs at the worst-case input x = 1:
//     Var(S^2) = (1/n)(mu_4 - sigma^4 (n-3)/(n-1)).
// (The paper's Eq. 13 prints sigma^2 where the classical formula has
// sigma^4; we implement the classical form and expose the printed variant
// for comparison -- see DESIGN.md, faithfulness note 2.)
#ifndef CAPP_ALGORITHMS_NS_SELECTOR_H_
#define CAPP_ALGORITHMS_NS_SELECTOR_H_

#include "core/status.h"

namespace capp {

/// Result of the n_s search.
struct NsSelection {
  int ns = 1;                  ///< Chosen number of segments.
  int segment_length = 1;      ///< floor(q / ns).
  int uploads_per_window = 1;  ///< ceil(w / segment_length).
  double epsilon_per_upload = 0.0;
  double objective = 0.0;      ///< ns * Var(ns, eps_u) at the optimum.
};

/// Variance of the sample variance of n i.i.d. draws with population
/// variance sigma2 and fourth central moment mu4 (classical formula).
/// Requires n >= 2.
double VarianceOfSampleVariance(int n, double sigma2, double mu4);

/// The paper's printed variant with sigma^2 in place of sigma^4.
double VarianceOfSampleVariancePaper(int n, double sigma2, double mu4);

/// Selects n_s in [1, q] minimizing n_s * Var(n_s, eps_u). `epsilon` is the
/// total window budget, `w` the window size, `q` the query length.
/// n_s = 1 is admitted with the n->infinity-free convention Var(1,.) = mu4
/// (the limit of the classical formula's bracket at n = 2 is mu4 - ...; for
/// n = 1 the sample variance is undefined, so the objective uses mu4 as a
/// pessimistic proxy).
Result<NsSelection> SelectSampleCount(double epsilon, int w, int q,
                                      bool use_paper_formula = false);

}  // namespace capp

#endif  // CAPP_ALGORITHMS_NS_SELECTOR_H_
