#include "algorithms/topl.h"

#include <algorithm>
#include <cmath>

#include "core/math_utils.h"

namespace capp {

Result<std::unique_ptr<Topl>> Topl::Create(ToplOptions options) {
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options.base));
  if (options.range_fraction <= 0.0 || options.range_fraction >= 1.0) {
    return Status::InvalidArgument("range_fraction must be in (0, 1)");
  }
  if (options.threshold_quantile <= 0.0 || options.threshold_quantile > 1.0) {
    return Status::InvalidArgument("threshold_quantile must be in (0, 1]");
  }
  if (options.range_slots < 0) {
    return Status::InvalidArgument("range_slots must be >= 0");
  }
  if (options.range_slots == 0) {
    options.range_slots = options.base.window;
  }
  const double eps_slot = options.base.epsilon / options.base.window;
  CAPP_ASSIGN_OR_RETURN(
      SquareWave range_sw,
      SquareWave::CreateCached(options.range_fraction * eps_slot));
  CAPP_ASSIGN_OR_RETURN(
      HybridMechanism publish_hm,
      HybridMechanism::Create((1.0 - options.range_fraction) * eps_slot));
  SwEmOptions em_options;
  em_options.input_buckets = options.em_buckets;
  em_options.output_buckets = 2 * options.em_buckets;
  CAPP_ASSIGN_OR_RETURN(SwDistributionEstimator estimator,
                        SwDistributionEstimator::Create(range_sw, em_options));
  return std::unique_ptr<Topl>(new Topl(options, std::move(range_sw),
                                        std::move(publish_hm),
                                        std::move(estimator)));
}

void Topl::DoReset() {
  phase1_reports_.clear();
  threshold_ = 1.0;
  range_learned_ = false;
}

void Topl::FinishRangeLearning() {
  const std::vector<double> hist = estimator_.Estimate(phase1_reports_);
  threshold_ = estimator_.HistogramQuantile(hist, opts_.threshold_quantile);
  // Guard against a degenerate zero threshold (all mass in bucket 0).
  threshold_ = std::max(threshold_, 1.0 / opts_.em_buckets);
  range_learned_ = true;
  phase1_reports_.clear();
}

double Topl::DoProcessValue(double x, Rng& rng) {
  x = Clamp(x, 0.0, 1.0);
  if (!range_learned_) {
    // Phase 1: SW report, remembered for EM range learning, and published
    // as-is for this slot.
    RecordSpend(range_sw_.epsilon());
    const double report = range_sw_.Perturb(x, rng);
    phase1_reports_.push_back(report);
    if (phase1_reports_.size() >= static_cast<size_t>(opts_.range_slots)) {
      FinishRangeLearning();
    }
    return report;
  }
  // Phase 2: clip to theta, map [0, theta] -> [-1, 1], HM-perturb, rescale.
  RecordSpend(publish_hm_.epsilon());
  const double clipped = std::min(x, threshold_);
  const double scaled = 2.0 * clipped / threshold_ - 1.0;
  const double y = publish_hm_.Perturb(scaled, rng);
  return threshold_ * (y + 1.0) / 2.0;
}

}  // namespace capp
