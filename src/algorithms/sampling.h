// Perturbation Parameterization with Sampling (PP-S), Algorithm 3.
//
// The query interval of q slots is divided into n_s segments of length
// L = floor(q / n_s) (the remainder joins the last segment, footnote 1 of
// the paper). One value -- the segment *mean* -- is uploaded per segment at
// its first slot, perturbed by the wrapped PP algorithm (direct / IPP / APP
// / CAPP over segment means), and the perturbed mean is replicated across
// the segment to reconstruct a full-length published stream.
//
// Budget: uploads occur only at the ns segment-start positions inside the
// query, spaced L slots apart, so any window of w consecutive slots
// contains at most  n_w = min(ns, floor((w-1)/L) + 1)  uploads and each
// upload spends eps / n_w (the allocation Theorem 6 requires; Algorithm 3's
// printed line 2 contradicts both the theorem and Fig. 3 -- see DESIGN.md,
// faithfulness note 3).
//
// `full_budget_per_upload` reproduces the Fig. 3 picture literally: every
// upload receives the whole window budget eps. That is sound only when the
// segment length reaches w (n_w == 1); for shorter segments it overspends,
// which an attached WEventAccountant will report. The benchmark for Fig. 6
// exercises both modes (see EXPERIMENTS.md).
#ifndef CAPP_ALGORITHMS_SAMPLING_H_
#define CAPP_ALGORITHMS_SAMPLING_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "algorithms/ns_selector.h"
#include "algorithms/perturber.h"

namespace capp {

/// Which perturbation-parameterization algorithm runs over segment means.
enum class PpKind {
  kDirect,  ///< "Sampling" baseline: SW on means, no parameterization.
  kIpp,     ///< IPP-S.
  kApp,     ///< APP-S.
  kCapp,    ///< CAPP-S.
};

/// Short name ("sampling", "ipp-s", "app-s", "capp-s").
std::string_view PpKindName(PpKind kind);

/// Options specific to PP-S.
struct SamplingOptions {
  /// Shared stream options (total window budget, w).
  PerturberOptions base;
  /// Number of segments. When unset, SelectSampleCount chooses it from the
  /// query length at perturbation time.
  std::optional<int> ns;
  /// Paper-figure mode: every upload gets the full window budget epsilon
  /// (sound only when segment length >= w). See the header comment.
  bool full_budget_per_upload = false;
};

/// The PP-S algorithm. Operates on whole subsequences (supports_online() is
/// false): the segment means need the full query interval.
class PpSampler final : public StreamPerturber {
 public:
  static Result<std::unique_ptr<PpSampler>> Create(SamplingOptions options,
                                                   PpKind inner);

  std::string_view name() const override { return name_; }
  bool supports_online() const override { return false; }
  int publication_smoothing_window() const override {
    // The parameterized sampling variants inherit the PP smoothing step;
    // the naive Sampling baseline publishes raw replicated means.
    return inner_ == PpKind::kDirect ? 1 : 3;
  }

  /// The segmentation used by the most recent PerturbSequence call.
  const NsSelection& last_selection() const { return last_selection_; }

 protected:
  double DoProcessValue(double /*x*/, Rng& /*rng*/) override;
  std::vector<double> DoPerturbSequence(std::span<const double> xs,
                                        Rng& rng) override;
  void DoReset() override { last_selection_ = NsSelection{}; }

 private:
  PpSampler(SamplingOptions options, PpKind inner, std::string name)
      : StreamPerturber(options.base), opts_(options), inner_(inner),
        name_(std::move(name)) {}

  SamplingOptions opts_;
  PpKind inner_;
  std::string name_;
  NsSelection last_selection_;
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_SAMPLING_H_
