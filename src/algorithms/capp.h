// Clipped Accumulated Perturbation Parameterization (CAPP), Algorithm 2 --
// the paper's flagship algorithm.
//
// Like APP, the input carries the accumulated deviation D, but instead of
// clipping to [0,1] the input is clipped to a tuned interval [l, u],
// normalized to the mechanism's input domain, perturbed, and the output
// denormalized back to [l, u]. Clipping and normalization are
// deterministic bijections/projections of a value that is already a known
// constant to the user, so the per-slot ratio bound p/q = e^{eps/w} is
// unchanged (Theorem 4). The interval choice trades sensitivity error
// against discarding error (see clip_bounds.h).
//
// The default mechanism is Square Wave (the paper's setting), for which
// the closed-form Eq.-11 bound selection applies. Section IV-C's extension
// to other mechanisms (Laplace/SR/PM) is also implemented: those require
// an explicit clip widening delta, since the paper omits their
// mechanism-specific interval derivations.
#ifndef CAPP_ALGORITHMS_CAPP_H_
#define CAPP_ALGORITHMS_CAPP_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "algorithms/clip_bounds.h"
#include "algorithms/perturber.h"
#include "algorithms/sw_direct.h"
#include "mechanisms/mechanism.h"

namespace capp {

/// Options specific to CAPP.
struct CappOptions {
  /// Shared stream options (total window budget, w).
  PerturberOptions base;
  /// Explicit clip widening delta (l = -delta, u = 1 + delta). When unset,
  /// the closed-form selector of Section IV-B chooses it from the per-slot
  /// budget (Square Wave only). Must be > -0.5 when set.
  std::optional<double> delta;
};

/// The CAPP algorithm.
class Capp final : public StreamPerturber {
 public:
  /// CAPP over the given mechanism. Non-SW mechanisms require an explicit
  /// options.delta (the Eq.-11 selector is SW-specific).
  static Result<std::unique_ptr<Capp>> Create(
      CappOptions options,
      MechanismKind mechanism = MechanismKind::kSquareWave);

  /// Convenience: SW-based CAPP with automatically selected bounds.
  static Result<std::unique_ptr<Capp>> Create(PerturberOptions options) {
    return Create(CappOptions{options, std::nullopt});
  }

  std::string_view name() const override { return name_; }
  int publication_smoothing_window() const override { return 3; }

  const ClipBounds& bounds() const { return bounds_; }
  double accumulated_deviation() const { return accumulated_deviation_; }
  const Mechanism& mechanism() const { return *mechanism_; }

 protected:
  double DoProcessValue(double x, Rng& rng) override;
  /// SW fast path: block-RNG + inline sampling (see square_wave.h);
  /// non-SW mechanisms fall back to the scalar loop. Bit-identical.
  void DoProcessChunk(std::span<const double> in, std::span<double> out,
                      Rng& rng) override;
  void DoReset() override { accumulated_deviation_ = 0.0; }

 private:
  Capp(PerturberOptions options, std::unique_ptr<Mechanism> mechanism,
       ClipBounds bounds, std::string name)
      : StreamPerturber(options), mechanism_(std::move(mechanism)),
        map_(*mechanism_), bounds_(bounds), name_(std::move(name)) {}

  std::unique_ptr<Mechanism> mechanism_;
  DomainMap map_;
  ClipBounds bounds_;
  std::string name_;
  double accumulated_deviation_ = 0.0;
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_CAPP_H_
