// User-side stream perturbation algorithms (the paper's Section III-V).
//
// A StreamPerturber consumes one user's stream values in [0,1], one per time
// slot, and emits one perturbed report per slot while guaranteeing w-event
// epsilon-LDP. All algorithms keep only constant per-user state (the
// accumulated deviation, budget bank, etc.), matching the paper's on-device
// deployment model.
//
// The non-virtual interface pattern keeps slot counting and budget
// accounting in the base class so concrete algorithms cannot get them wrong.
#ifndef CAPP_ALGORITHMS_PERTURBER_H_
#define CAPP_ALGORITHMS_PERTURBER_H_

#include <cmath>
#include <span>
#include <string_view>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "stream/accountant.h"

namespace capp {

/// Configuration shared by all stream perturbation algorithms.
struct PerturberOptions {
  /// Total privacy budget available inside any window of `window` slots.
  double epsilon = 1.0;
  /// w-event window size (>= 1).
  int window = 10;
};

/// Validates common options (epsilon in (0, 50], window >= 1).
Status ValidatePerturberOptions(const PerturberOptions& options);

/// Maps arbitrary caller input into the [0,1] data domain: non-finite
/// values (sensor glitches) become the domain midpoint, everything else is
/// clamped. Applied by StreamPerturber::ProcessValue before any algorithm
/// sees the value, so downstream state can never be poisoned by a NaN.
/// Inline: runs once per slot on every perturbation path.
inline double SanitizeUnitValue(double x) {
  if (!std::isfinite(x)) return 0.5;
  if (x < 0.0) return 0.0;
  if (x > 1.0) return 1.0;
  return x;
}

/// Base class for user-side stream perturbation algorithms.
class StreamPerturber {
 public:
  virtual ~StreamPerturber() = default;

  /// Algorithm identifier ("sw-direct", "ipp", "app", "capp", ...).
  virtual std::string_view name() const = 0;

  /// True if the algorithm can produce one report per ProcessValue call.
  /// Sampling-based algorithms (PP-S) operate on whole subsequences only.
  virtual bool supports_online() const { return true; }

  /// Collector-side SMA window this algorithm's publication step calls for.
  /// The parameterized algorithms (IPP/APP/CAPP and their sampling
  /// variants) smooth with window 3 (Algorithm 2 line 13; Section VI-A);
  /// the baselines publish raw reports. 1 disables smoothing.
  virtual int publication_smoothing_window() const { return 1; }

  /// Perturbs the value of the next time slot and returns the report.
  /// Precondition: supports_online().
  double ProcessValue(double x, Rng& rng);

  /// Perturbs the next in.size() consecutive slots: out[i] is the report
  /// for in[i]. Bit-identical to calling ProcessValue per element (same
  /// sanitation, RNG draws, ledger state, and slot counter), but concrete
  /// algorithms amortize virtual dispatch, budget bookkeeping, and RNG
  /// block generation over the chunk. Requires supports_online() and
  /// out.size() == in.size(); in and out must not overlap.
  void ProcessChunk(std::span<const double> in, std::span<double> out,
                    Rng& rng);

  /// Perturbs a whole subsequence; returns one report per input value.
  std::vector<double> PerturbSequence(std::span<const double> xs, Rng& rng);

  /// Clears all per-stream state (deviations, banks, slot counter).
  void Reset();

  /// Attaches a (non-owned) budget ledger; every subsequent spend is
  /// recorded against it. Pass nullptr to detach.
  void AttachAccountant(WEventAccountant* accountant) {
    accountant_ = accountant;
  }

  const PerturberOptions& options() const { return options_; }

  /// Number of slots processed since construction/Reset.
  size_t slots_processed() const { return slot_; }

 protected:
  explicit StreamPerturber(PerturberOptions options) : options_(options) {}

  /// Per-slot hook implemented by concrete algorithms.
  virtual double DoProcessValue(double x, Rng& rng) = 0;

  /// Chunk hook; inputs arrive unsanitized (apply SanitizeUnitValue per
  /// element, exactly like the scalar path). The default loops
  /// DoProcessValue and advances the slot counter per element; overrides
  /// must preserve that observable behavior bit for bit.
  virtual void DoProcessChunk(std::span<const double> in,
                              std::span<double> out, Rng& rng);

  /// Whole-sequence hook; the default loops over DoProcessValue.
  virtual std::vector<double> DoPerturbSequence(std::span<const double> xs,
                                                Rng& rng);

  /// State-reset hook.
  virtual void DoReset() = 0;

  /// Records a privacy spend for the slot currently being processed.
  void RecordSpend(double epsilon);

  /// Records a uniform per-slot spend for the next `n` slots in one ledger
  /// operation (chunk overrides whose every slot spends the same budget).
  void RecordSpendRun(size_t n, double epsilon);

  /// Records a privacy spend for an explicit slot (used by sequence-level
  /// algorithms such as PP-S whose uploads are sparse).
  void RecordSpendAt(size_t slot, double epsilon);

  /// Advances the slot counter (sequence-level algorithms that bypass
  /// ProcessValue call this once per consumed input value).
  void AdvanceSlots(size_t n) { slot_ += n; }

 private:
  PerturberOptions options_;
  WEventAccountant* accountant_ = nullptr;
  size_t slot_ = 0;
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_PERTURBER_H_
