#include "algorithms/ns_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "mechanisms/square_wave.h"

namespace capp {
namespace {

// Moments of SW's output at the worst-case input x = 1, exactly from the
// piecewise-constant density.
struct SwWorstCaseMoments {
  double sigma2 = 0.0;
  double mu4 = 0.0;
};

Result<SwWorstCaseMoments> MomentsAtOne(double epsilon) {
  CAPP_ASSIGN_OR_RETURN(SquareWave sw, SquareWave::CreateCached(epsilon));
  CAPP_ASSIGN_OR_RETURN(PiecewiseConstantDensity density,
                        sw.OutputDensity(1.0));
  SwWorstCaseMoments m;
  m.sigma2 = density.CentralMoment(2);
  m.mu4 = density.CentralMoment(4);
  return m;
}

}  // namespace

double VarianceOfSampleVariance(int n, double sigma2, double mu4) {
  CAPP_CHECK(n >= 2);
  const double nn = static_cast<double>(n);
  return (mu4 - sigma2 * sigma2 * (nn - 3.0) / (nn - 1.0)) / nn;
}

double VarianceOfSampleVariancePaper(int n, double sigma2, double mu4) {
  CAPP_CHECK(n >= 2);
  const double nn = static_cast<double>(n);
  return (mu4 - sigma2 * (nn - 3.0) / (nn - 1.0)) / nn;
}

Result<NsSelection> SelectSampleCount(double epsilon, int w, int q,
                                      bool use_paper_formula) {
  if (w < 1) return Status::InvalidArgument("w must be >= 1");
  if (q < 1) return Status::InvalidArgument("q must be >= 1");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }

  NsSelection best;
  double best_objective = std::numeric_limits<double>::infinity();
  for (int ns = 1; ns <= q; ++ns) {
    const int segment_length = q / ns;  // floor; remainder -> last segment
    if (segment_length < 1) break;
    // Uploads exist only inside the query, spaced L apart: a w-window can
    // cover at most floor((w-1)/L) + 1 of them, and never more than ns.
    const int uploads_per_window =
        std::min(ns, (w - 1) / segment_length + 1);
    const double eps_u = epsilon / uploads_per_window;
    CAPP_ASSIGN_OR_RETURN(SwWorstCaseMoments m, MomentsAtOne(eps_u));
    double var_s2;
    if (ns == 1) {
      var_s2 = m.mu4;  // pessimistic proxy; see header comment
    } else if (use_paper_formula) {
      var_s2 = VarianceOfSampleVariancePaper(ns, m.sigma2, m.mu4);
    } else {
      var_s2 = VarianceOfSampleVariance(ns, m.sigma2, m.mu4);
    }
    const double objective = static_cast<double>(ns) * var_s2;
    if (objective < best_objective) {
      best_objective = objective;
      best.ns = ns;
      best.segment_length = segment_length;
      best.uploads_per_window = uploads_per_window;
      best.epsilon_per_upload = eps_u;
      best.objective = objective;
    }
  }
  return best;
}

}  // namespace capp
