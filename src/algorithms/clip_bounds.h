// Closed-form selection of CAPP's clipping interval [l, u] (Section IV-B).
//
// CAPP trades two error sources against each other:
//   * sensitivity error e_s: a wider interval dilutes the per-slot budget
//     over a wider effective domain (more noise). The paper measures it as
//     e_s = exp(x - E[SW(x)]) - 1 at the worst case x = 1.
//   * discarding error e_d: a narrower interval discards accumulated-
//     deviation information. Measured as the standard deviation of
//     D_x = x - SW(x) at x = 1.
// The interval is [l, u] = [0 - T, 1 + T] with T = e_s - e_d (Eq. 11).
//
// All moments are computed exactly from the SW output density (no
// quadrature). The paper's printed closed forms are exposed separately;
// unit tests confirm they agree with the exact integrals.
#ifndef CAPP_ALGORITHMS_CLIP_BOUNDS_H_
#define CAPP_ALGORITHMS_CLIP_BOUNDS_H_

#include "core/status.h"
#include "mechanisms/square_wave.h"

namespace capp {

/// A CAPP clipping interval and the error terms that produced it.
struct ClipBounds {
  double l = 0.0;                 ///< Lower clip bound (0 - delta).
  double u = 1.0;                 ///< Upper clip bound (1 + delta).
  double delta = 0.0;             ///< The applied widening T (possibly clamped).
  double raw_delta = 0.0;         ///< Unclamped T = e_s - e_d.
  double sensitivity_error = 0.0; ///< e_s at x = 1.
  double discarding_error = 0.0;  ///< e_d at x = 1.
};

/// Paper's recommended stability range for delta (Section VI-D-4).
inline constexpr double kMinDelta = -0.25;
inline constexpr double kMaxDelta = 0.25;

/// Sensitivity error e_s = exp(1 - E[SW(1)]) - 1 for the given mechanism.
double SwSensitivityError(const SquareWave& sw);

/// Discarding error e_d = sqrt(Var(SW(1))) for the given mechanism.
double SwDiscardingError(const SquareWave& sw);

/// Computes [l, u] for the per-slot budget `epsilon_per_slot`, clamping the
/// widening into [kMinDelta, kMaxDelta] as the paper recommends.
Result<ClipBounds> SelectClipBounds(double epsilon_per_slot);

/// Builds bounds from an explicit delta (for the Fig. 11 sensitivity sweep).
/// Requires delta > -0.5 so that u - l = 1 + 2*delta stays positive.
Result<ClipBounds> ClipBoundsFromDelta(double delta);

/// Library extension (beyond the paper): selects delta by minimizing an
/// analytic proxy of the published-report error,
///     proxy(delta) = (1+2*delta)^2 * Var[SW(1/2)]          (report noise)
///                  + lambda * 2*max(0,-delta)^3 / 3        (clipping loss),
/// where the clipping term is the expected squared truncation of inputs
/// uniform on [0,1] against [l,u], weighted by `lambda` to account for the
/// accumulated deviation inflating the effective input spread. The Fig. 11
/// sweep shows this proxy tracks the empirical optimum (delta ~ -0.25 at
/// stream budgets) more closely than Eq. 11's worst-case widening; see
/// bench_ablation_bounds and EXPERIMENTS.md.
Result<ClipBounds> SelectClipBoundsProxy(double epsilon_per_slot,
                                         double lambda = 3.0);

/// The paper's printed closed form for E[D_x] at input x (Section IV-B):
/// E(D_x) = q((1+2b)x - (b + 1/2)).
double PaperExpectedDx(const SwParams& params, double x);

/// The paper's printed closed form for Var(D_x) at x = 1 (Section IV-B).
double PaperVarDx(const SwParams& params);

/// The paper's printed closed form for mu = E[SW(1)] (Section V).
double PaperMuAtOne(const SwParams& params);

}  // namespace capp

#endif  // CAPP_ALGORITHMS_CLIP_BOUNDS_H_
