// Iterative Perturbation Parameterization (IPP), Section III-C of the paper.
//
// The user feeds the deviation of the *previous* slot back into the current
// input:  x^I_t = clip(x_t + d_{t-1}, [0,1]),  d_t = x_t - x'_t.
// Only the most recent deviation is used; the input value is a known
// constant to the user given previous outputs, so each slot still enjoys the
// full per-slot ratio bound p/q = e^{eps/w} (Theorem 3 argument).
#ifndef CAPP_ALGORITHMS_IPP_H_
#define CAPP_ALGORITHMS_IPP_H_

#include <memory>
#include <string>
#include <string_view>

#include "algorithms/perturber.h"
#include "algorithms/sw_direct.h"
#include "mechanisms/mechanism.h"

namespace capp {

/// The IPP algorithm; mechanism defaults to Square Wave.
class Ipp final : public StreamPerturber {
 public:
  static Result<std::unique_ptr<Ipp>> Create(
      PerturberOptions options,
      MechanismKind mechanism = MechanismKind::kSquareWave);

  std::string_view name() const override { return name_; }
  int publication_smoothing_window() const override { return 3; }

  /// Deviation of the most recent slot, x_t - x'_t.
  double last_deviation() const { return last_deviation_; }

 protected:
  double DoProcessValue(double x, Rng& rng) override;
  /// SW fast path: block-RNG + inline sampling (see square_wave.h);
  /// non-SW mechanisms fall back to the scalar loop. Bit-identical.
  void DoProcessChunk(std::span<const double> in, std::span<double> out,
                      Rng& rng) override;
  void DoReset() override { last_deviation_ = 0.0; }

 private:
  Ipp(PerturberOptions options, std::unique_ptr<Mechanism> mechanism,
      std::string name)
      : StreamPerturber(options), mechanism_(std::move(mechanism)),
        map_(*mechanism_), name_(std::move(name)) {}

  std::unique_ptr<Mechanism> mechanism_;
  DomainMap map_;
  std::string name_;
  double last_deviation_ = 0.0;
};

}  // namespace capp

#endif  // CAPP_ALGORITHMS_IPP_H_
