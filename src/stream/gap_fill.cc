#include "stream/gap_fill.h"

#include <cmath>

namespace capp {

std::vector<double> FillGapsForward(std::span<const double> xs, double prior) {
  std::vector<double> filled(xs.size());
  double last = prior;
  for (size_t t = 0; t < xs.size(); ++t) {
    if (!std::isnan(xs[t])) last = xs[t];
    filled[t] = last;
  }
  return filled;
}

}  // namespace capp
