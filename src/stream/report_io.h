// Persistence for sanitized slot reports. Reports are already private
// (they left the device perturbed), so they can be logged, batched, and
// replayed freely; this module provides a CSV wire/batch format
// (user_id,slot,value) used to move reports between user devices, brokers,
// and the collector, and to archive collected streams for offline analysis.
// The compact binary sibling (varint + CRC32 framing, used by the queued
// transports) lives in transport/wire_format.h.
#ifndef CAPP_STREAM_REPORT_IO_H_
#define CAPP_STREAM_REPORT_IO_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "stream/session.h"

namespace capp {

/// Writes reports as CSV ("user_id,slot,value" with a header line).
Status SaveReportsCsv(const std::string& path,
                      const std::vector<SlotReport>& reports);

/// Reads reports written by SaveReportsCsv. Strict: exactly 3 fields per
/// row, ids as non-negative integers rejected on 64-bit overflow, finite
/// values with no trailing garbage, and at most one header line (a
/// duplicate header mid-file means two archives were concatenated).
Result<std::vector<SlotReport>> LoadReportsCsv(const std::string& path);

/// Feeds a batch of reports into a collector session.
void IngestAll(const std::vector<SlotReport>& reports,
               CollectorSession* collector);

}  // namespace capp

#endif  // CAPP_STREAM_REPORT_IO_H_
