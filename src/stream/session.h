// High-level deployment API pairing the two sides of the paper's Fig. 1:
//
//   * UserSession -- runs on each user's device. Wraps a stream
//     perturbation algorithm, the w-event budget ledger, and an auditable
//     per-slot report record. One call per time slot.
//   * CollectorSession -- runs at the untrusted collector. Ingests the
//     per-slot reports of many users, maintains per-user published streams
//     (with each algorithm's smoothing), per-slot population means, and
//     subsequence statistics.
//
// The sessions are deliberately transport-agnostic: a report is just
// (user_id, slot, value); any RPC/MQTT/file transport can carry it.
#ifndef CAPP_STREAM_SESSION_H_
#define CAPP_STREAM_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "algorithms/factory.h"
#include "algorithms/perturber.h"
#include "core/rng.h"
#include "core/status.h"
#include "stream/accountant.h"
#include "stream/smoothing.h"

namespace capp {

/// One sanitized report leaving a user's device.
struct SlotReport {
  uint64_t user_id = 0;
  size_t slot = 0;
  double value = 0.0;
};

/// Per-device session: perturb values as they arrive, with a built-in
/// privacy audit.
class UserSession {
 public:
  /// Creates a session for one user. `seed` drives the device's RNG.
  static Result<UserSession> Create(uint64_t user_id, AlgorithmKind kind,
                                    PerturberOptions options, uint64_t seed);

  /// Perturbs the current slot's value and returns the outgoing report.
  /// Values are clamped into [0,1] (normalize upstream if necessary).
  SlotReport Report(double value);

  uint64_t user_id() const { return user_id_; }
  size_t slots_processed() const { return perturber_->slots_processed(); }

  /// The running privacy audit: OK iff no window overspent so far.
  Status AuditBudget() const {
    return ledger_.VerifyBudget(perturber_->options().window,
                                perturber_->options().epsilon);
  }

  /// Maximum budget spent in any window so far.
  double MaxWindowSpend() const {
    return ledger_.MaxWindowSpend(perturber_->options().window);
  }

 private:
  UserSession(uint64_t user_id, std::unique_ptr<StreamPerturber> perturber,
              uint64_t seed)
      : user_id_(user_id), perturber_(std::move(perturber)), rng_(seed) {}

  uint64_t user_id_;
  std::unique_ptr<StreamPerturber> perturber_;
  WEventAccountant ledger_;
  Rng rng_;
  int smoothing_window_ = 1;
};

/// Collector-side session: ingest reports, publish streams and statistics.
class CollectorSession {
 public:
  /// `smoothing_window` is the SMA applied to published per-user streams
  /// (odd; use the algorithm's recommendation, e.g. 3 for PP algorithms).
  static Result<CollectorSession> Create(int smoothing_window = 3);

  /// Ingests one report. Slots may arrive in any order per user; the
  /// stream is indexed by the report's slot.
  void Ingest(const SlotReport& report);

  /// Number of users seen so far.
  size_t user_count() const { return raw_.size(); }

  /// Number of slots seen for a user (0 if unknown).
  size_t SlotCount(uint64_t user_id) const;

  /// The user's published (smoothed) stream. Missing slots are filled with
  /// the user's last preceding report (0.5 if none).
  Result<std::vector<double>> PublishedStream(uint64_t user_id) const;

  /// Mean of the user's reports over slots [begin, begin+len).
  Result<double> SubsequenceMean(uint64_t user_id, size_t begin,
                                 size_t len) const;

  /// Per-slot population mean over all users that reported that slot, for
  /// slots [0, max_slot]. Slots nobody reported yield NaN.
  std::vector<double> PopulationSlotMeans() const;

 private:
  explicit CollectorSession(int smoothing_window)
      : smoothing_window_(smoothing_window) {}

  // user -> (slot -> report value).
  std::map<uint64_t, std::map<size_t, double>> raw_;
  size_t max_slot_ = 0;
  bool any_report_ = false;
  int smoothing_window_;
};

}  // namespace capp

#endif  // CAPP_STREAM_SESSION_H_
