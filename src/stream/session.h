// High-level deployment API pairing the two sides of the paper's Fig. 1:
//
//   * UserSession -- runs on each user's device. Wraps a stream
//     perturbation algorithm, the w-event budget ledger, and an auditable
//     per-slot report record. One call per time slot.
//   * CollectorSession -- runs at the untrusted collector. Ingests the
//     per-slot reports of many users, maintains per-user published streams
//     (with each algorithm's smoothing), per-slot population means, and
//     subsequence statistics. Storage is delegated to the engine's
//     ShardedCollector, so the same session scales from unit tests to
//     concurrent million-user fleets.
//
// The sessions are deliberately transport-agnostic: a report is just
// (user_id, slot, value); any RPC/MQTT/file transport can carry it.
#ifndef CAPP_STREAM_SESSION_H_
#define CAPP_STREAM_SESSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "algorithms/factory.h"
#include "algorithms/perturber.h"
#include "core/rng.h"
#include "core/status.h"
#include "engine/sharded_collector.h"
#include "stream/accountant.h"
#include "stream/report.h"
#include "stream/smoothing.h"

namespace capp {

/// Per-device session: perturb values as they arrive, with a built-in
/// privacy audit.
class UserSession {
 public:
  /// Creates a session for one user. `seed` drives the device's RNG.
  static Result<UserSession> Create(uint64_t user_id, AlgorithmKind kind,
                                    PerturberOptions options, uint64_t seed);

  // The perturber records spends against the ledger by address, so every
  // construction and move must re-point it at this object's ledger (the
  // null check keeps moved-from sessions harmless).
  UserSession(UserSession&& other) noexcept
      : user_id_(other.user_id_),
        perturber_(std::move(other.perturber_)),
        ledger_(std::move(other.ledger_)),
        rng_(other.rng_),
        clamp_scratch_(std::move(other.clamp_scratch_)) {
    if (perturber_) perturber_->AttachAccountant(&ledger_);
  }
  UserSession& operator=(UserSession&& other) noexcept {
    if (this == &other) return *this;
    user_id_ = other.user_id_;
    perturber_ = std::move(other.perturber_);
    ledger_ = std::move(other.ledger_);
    rng_ = other.rng_;
    clamp_scratch_ = std::move(other.clamp_scratch_);
    if (perturber_) perturber_->AttachAccountant(&ledger_);
    return *this;
  }

  /// Re-purposes this session for another user: algorithm state, budget
  /// ledger, and slot counter are reset and the RNG is reseeded, leaving
  /// the session indistinguishable from a freshly created one -- while the
  /// perturber and ledger allocations are reused. The engine's fleet
  /// workers pool one session per worker through this instead of paying a
  /// mechanism construction per simulated user.
  void ResetForUser(uint64_t user_id, uint64_t seed);

  /// Perturbs the current slot's value and returns the outgoing report.
  /// Values are clamped into [0,1] (normalize upstream if necessary).
  SlotReport Report(double value);

  /// Perturbs values.size() consecutive slots in one call: out[i] is the
  /// report *value* for slot slots_processed()+i (the caller composes
  /// SlotReports, which keeps bulk producers free of per-report structs).
  /// Bit-identical to calling Report per element; the batched path is
  /// described at StreamPerturber::ProcessChunk. out.size() must equal
  /// values.size().
  void ReportChunk(std::span<const double> values, std::span<double> out);

  uint64_t user_id() const { return user_id_; }
  size_t slots_processed() const { return perturber_->slots_processed(); }

  /// The running privacy audit: OK iff no window overspent so far.
  Status AuditBudget() const {
    return ledger_.VerifyBudget(perturber_->options().window,
                                perturber_->options().epsilon);
  }

  /// Maximum budget spent in any window so far.
  double MaxWindowSpend() const {
    return ledger_.MaxWindowSpend(perturber_->options().window);
  }

 private:
  UserSession(uint64_t user_id, std::unique_ptr<StreamPerturber> perturber,
              uint64_t seed)
      : user_id_(user_id), perturber_(std::move(perturber)), rng_(seed) {
    perturber_->AttachAccountant(&ledger_);
  }

  uint64_t user_id_;
  std::unique_ptr<StreamPerturber> perturber_;
  WEventAccountant ledger_;
  Rng rng_;
  std::vector<double> clamp_scratch_;  // ReportChunk's clamped inputs
};

/// Collector-side session: ingest reports, publish streams and statistics.
class CollectorSession {
 public:
  /// `smoothing_window` is the SMA applied to published per-user streams
  /// (odd; use the algorithm's recommendation, e.g. 3 for PP algorithms).
  static Result<CollectorSession> Create(int smoothing_window = 3);

  /// Ingests one report. Slots may arrive in any order per user; the
  /// stream is indexed by the report's slot.
  void Ingest(const SlotReport& report);

  /// Number of users seen so far.
  size_t user_count() const { return backend_.user_count(); }

  /// Number of slots seen for a user (0 if unknown).
  size_t SlotCount(uint64_t user_id) const {
    return backend_.SlotCount(user_id);
  }

  /// The user's published (smoothed) stream. Missing slots are filled with
  /// the user's last preceding report (0.5 if none; see stream/gap_fill.h).
  Result<std::vector<double>> PublishedStream(uint64_t user_id) const;

  /// Mean of the user's reports over slots [begin, begin+len).
  Result<double> SubsequenceMean(uint64_t user_id, size_t begin,
                                 size_t len) const {
    return backend_.SubsequenceMean(user_id, begin, len);
  }

  /// Per-slot population mean over all users that reported that slot, for
  /// slots [0, max_slot]. Slots nobody reported yield NaN.
  std::vector<double> PopulationSlotMeans() const {
    return backend_.PopulationSlotMeans();
  }

 private:
  CollectorSession(int smoothing_window, ShardedCollector backend)
      : backend_(std::move(backend)), smoothing_window_(smoothing_window) {}

  ShardedCollector backend_;
  int smoothing_window_;
};

}  // namespace capp

#endif  // CAPP_STREAM_SESSION_H_
