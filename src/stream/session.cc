#include "stream/session.h"

#include <utility>

#include "core/math_utils.h"

namespace capp {

Result<UserSession> UserSession::Create(uint64_t user_id, AlgorithmKind kind,
                                        PerturberOptions options,
                                        uint64_t seed) {
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<StreamPerturber> perturber,
                        CreatePerturber(kind, options));
  if (!perturber->supports_online()) {
    return Status::InvalidArgument(
        "sampling algorithms need whole subsequences; use PerturbSequence "
        "directly instead of a UserSession");
  }
  return UserSession(user_id, std::move(perturber), seed);
}

void UserSession::ResetForUser(uint64_t user_id, uint64_t seed) {
  user_id_ = user_id;
  perturber_->Reset();
  ledger_.Reset();
  rng_ = Rng(seed);
}

SlotReport UserSession::Report(double value) {
  SlotReport report;
  report.user_id = user_id_;
  report.slot = perturber_->slots_processed();
  report.value = perturber_->ProcessValue(Clamp(value, 0.0, 1.0), rng_);
  return report;
}

void UserSession::ReportChunk(std::span<const double> values,
                              std::span<double> out) {
  clamp_scratch_.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    clamp_scratch_[i] = Clamp(values[i], 0.0, 1.0);
  }
  perturber_->ProcessChunk(clamp_scratch_, out, rng_);
}

Result<CollectorSession> CollectorSession::Create(int smoothing_window) {
  if (smoothing_window < 1 || smoothing_window % 2 == 0) {
    return Status::InvalidArgument("smoothing_window must be odd and >= 1");
  }
  CAPP_ASSIGN_OR_RETURN(ShardedCollector backend, ShardedCollector::Create());
  return CollectorSession(smoothing_window, std::move(backend));
}

void CollectorSession::Ingest(const SlotReport& report) {
  backend_.Ingest(report);
}

Result<std::vector<double>> CollectorSession::PublishedStream(
    uint64_t user_id) const {
  CAPP_ASSIGN_OR_RETURN(std::vector<double> filled,
                        backend_.GapFilledStream(user_id));
  return SimpleMovingAverage(filled, smoothing_window_);
}

}  // namespace capp
