#include "stream/session.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/math_utils.h"

namespace capp {

Result<UserSession> UserSession::Create(uint64_t user_id, AlgorithmKind kind,
                                        PerturberOptions options,
                                        uint64_t seed) {
  CAPP_ASSIGN_OR_RETURN(std::unique_ptr<StreamPerturber> perturber,
                        CreatePerturber(kind, options));
  if (!perturber->supports_online()) {
    return Status::InvalidArgument(
        "sampling algorithms need whole subsequences; use PerturbSequence "
        "directly instead of a UserSession");
  }
  return UserSession(user_id, std::move(perturber), seed);
}

SlotReport UserSession::Report(double value) {
  // Re-attach on every call: UserSession is movable, and the ledger's
  // address changes with it.
  perturber_->AttachAccountant(&ledger_);
  SlotReport report;
  report.user_id = user_id_;
  report.slot = perturber_->slots_processed();
  report.value = perturber_->ProcessValue(Clamp(value, 0.0, 1.0), rng_);
  return report;
}

Result<CollectorSession> CollectorSession::Create(int smoothing_window) {
  if (smoothing_window < 1 || smoothing_window % 2 == 0) {
    return Status::InvalidArgument("smoothing_window must be odd and >= 1");
  }
  return CollectorSession(smoothing_window);
}

void CollectorSession::Ingest(const SlotReport& report) {
  raw_[report.user_id][report.slot] = report.value;
  max_slot_ = any_report_ ? std::max(max_slot_, report.slot) : report.slot;
  any_report_ = true;
}

size_t CollectorSession::SlotCount(uint64_t user_id) const {
  const auto it = raw_.find(user_id);
  return it == raw_.end() ? 0 : it->second.size();
}

Result<std::vector<double>> CollectorSession::PublishedStream(
    uint64_t user_id) const {
  const auto it = raw_.find(user_id);
  if (it == raw_.end()) {
    return Status::NotFound("unknown user");
  }
  const auto& slots = it->second;
  const size_t n = slots.rbegin()->first + 1;
  std::vector<double> stream(n, 0.5);
  double last = 0.5;
  for (size_t t = 0; t < n; ++t) {
    const auto slot_it = slots.find(t);
    if (slot_it != slots.end()) last = slot_it->second;
    stream[t] = last;
  }
  return SimpleMovingAverage(stream, smoothing_window_);
}

Result<double> CollectorSession::SubsequenceMean(uint64_t user_id,
                                                 size_t begin,
                                                 size_t len) const {
  if (len == 0) return Status::InvalidArgument("len must be >= 1");
  const auto it = raw_.find(user_id);
  if (it == raw_.end()) return Status::NotFound("unknown user");
  KahanSum sum;
  size_t count = 0;
  for (size_t t = begin; t < begin + len; ++t) {
    const auto slot_it = it->second.find(t);
    if (slot_it != it->second.end()) {
      sum.Add(slot_it->second);
      ++count;
    }
  }
  if (count == 0) {
    return Status::NotFound("no reports in the requested interval");
  }
  return sum.Total() / static_cast<double>(count);
}

std::vector<double> CollectorSession::PopulationSlotMeans() const {
  if (!any_report_) return {};
  std::vector<double> sums(max_slot_ + 1, 0.0);
  std::vector<size_t> counts(max_slot_ + 1, 0);
  for (const auto& [user, slots] : raw_) {
    for (const auto& [slot, value] : slots) {
      sums[slot] += value;
      counts[slot] += 1;
    }
  }
  std::vector<double> means(max_slot_ + 1,
                            std::numeric_limits<double>::quiet_NaN());
  for (size_t t = 0; t <= max_slot_; ++t) {
    if (counts[t] > 0) means[t] = sums[t] / counts[t];
  }
  return means;
}

}  // namespace capp
