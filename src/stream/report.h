// The wire-level unit of the paper's deployment model (Fig. 1): one
// sanitized report leaving a user's device per time slot. Reports are
// transport-agnostic -- any RPC/MQTT/file transport can carry them -- and
// already private (perturbation happened on-device), so collectors, brokers
// and archives may handle them freely.
#ifndef CAPP_STREAM_REPORT_H_
#define CAPP_STREAM_REPORT_H_

#include <cstddef>
#include <cstdint>

namespace capp {

/// One sanitized report leaving a user's device.
struct SlotReport {
  uint64_t user_id = 0;
  size_t slot = 0;
  double value = 0.0;
};

}  // namespace capp

#endif  // CAPP_STREAM_REPORT_H_
