#include "stream/smoothing.h"

#include <algorithm>

#include "core/check.h"

namespace capp {

Result<std::vector<double>> SimpleMovingAverage(std::span<const double> xs,
                                                int window) {
  std::vector<double> out;
  std::vector<double> prefix;
  CAPP_RETURN_IF_ERROR(SimpleMovingAverageInto(xs, window, out, prefix));
  return out;
}

Status SimpleMovingAverageInto(std::span<const double> xs, int window,
                               std::vector<double>& out,
                               std::vector<double>& prefix_scratch) {
  if (window < 1 || window % 2 == 0) {
    return Status::InvalidArgument("SMA window must be odd and >= 1");
  }
  if (window == 1 || xs.size() <= 1) {
    out.assign(xs.begin(), xs.end());
    return Status::OK();
  }
  // Every slot below is overwritten, so sizing without the copy suffices.
  out.resize(xs.size());
  const int k = window / 2;
  const int n = static_cast<int>(xs.size());
  // Prefix sums for O(n) evaluation.
  prefix_scratch.resize(n + 1);
  prefix_scratch[0] = 0.0;
  for (int i = 0; i < n; ++i) {
    prefix_scratch[i + 1] = prefix_scratch[i] + xs[i];
  }
  // Every slot evaluates the same expression,
  // (prefix[hi+1] - prefix[lo]) / (hi - lo + 1); the edge slots -- where
  // the window is clipped -- are peeled off so the interior loop has a
  // loop-invariant divisor and no per-slot min/max, which lets it
  // vectorize. This was the second-largest per-report cost on the fleet
  // hot path after the clipping branches kept the fused loop scalar.
  const double* prefix = prefix_scratch.data();
  int t = 0;
  for (const int left_end = std::min(k, n); t < left_end; ++t) {
    const int hi = std::min(n - 1, t + k);
    out[t] = (prefix[hi + 1] - prefix[0]) / static_cast<double>(hi + 1);
  }
  for (const int interior_end = n - k; t < interior_end; ++t) {
    out[t] = (prefix[t + k + 1] - prefix[t - k]) /
             static_cast<double>(window);
  }
  for (; t < n; ++t) {
    const int lo = std::max(0, t - k);
    out[t] = (prefix[n] - prefix[lo]) / static_cast<double>(n - lo);
  }
  return Status::OK();
}

std::vector<double> Sma3(std::span<const double> xs) {
  auto res = SimpleMovingAverage(xs, 3);
  CAPP_CHECK(res.ok());
  return std::move(res).value();
}

}  // namespace capp
