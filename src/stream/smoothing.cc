#include "stream/smoothing.h"

#include <algorithm>

#include "core/check.h"

namespace capp {

Result<std::vector<double>> SimpleMovingAverage(std::span<const double> xs,
                                                int window) {
  std::vector<double> out;
  std::vector<double> prefix;
  CAPP_RETURN_IF_ERROR(SimpleMovingAverageInto(xs, window, out, prefix));
  return out;
}

Status SimpleMovingAverageInto(std::span<const double> xs, int window,
                               std::vector<double>& out,
                               std::vector<double>& prefix_scratch) {
  if (window < 1 || window % 2 == 0) {
    return Status::InvalidArgument("SMA window must be odd and >= 1");
  }
  out.assign(xs.begin(), xs.end());
  if (window == 1 || xs.size() <= 1) return Status::OK();
  const int k = window / 2;
  const int n = static_cast<int>(xs.size());
  // Prefix sums for O(n) evaluation.
  prefix_scratch.resize(n + 1);
  prefix_scratch[0] = 0.0;
  for (int i = 0; i < n; ++i) {
    prefix_scratch[i + 1] = prefix_scratch[i] + xs[i];
  }
  for (int t = 0; t < n; ++t) {
    const int lo = std::max(0, t - k);
    const int hi = std::min(n - 1, t + k);
    out[t] = (prefix_scratch[hi + 1] - prefix_scratch[lo]) /
             static_cast<double>(hi - lo + 1);
  }
  return Status::OK();
}

std::vector<double> Sma3(std::span<const double> xs) {
  auto res = SimpleMovingAverage(xs, 3);
  CAPP_CHECK(res.ok());
  return std::move(res).value();
}

}  // namespace capp
