#include "stream/report_io.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string_view>

namespace capp {
namespace {

constexpr std::string_view kReportCsvHeader = "user_id,slot,value";

Status RowError(size_t line, const std::string& what) {
  return Status::InvalidArgument("report CSV line " + std::to_string(line) +
                                 ": " + what);
}

// Strict non-negative decimal integer: no sign, no exponent, no fraction,
// no whitespace. from_chars reports overflow past uint64 explicitly, so
// an id like 99999999999999999999999 is rejected instead of wrapping.
Result<uint64_t> ParseId(std::string_view field, size_t line,
                         const char* what) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value, 10);
  if (ec == std::errc::result_out_of_range) {
    return RowError(line, std::string(what) + " overflows 64 bits: '" +
                              std::string(field) + "'");
  }
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    return RowError(line, std::string(what) +
                              " is not a non-negative integer: '" +
                              std::string(field) + "'");
  }
  return value;
}

// A finite double consuming the entire field (trailing spaces/tabs are
// tolerated for hand-edited files; anything else -- "0.5garbage" -- is
// rejected). `begin` must be NUL-terminated: the value is the last field
// of its line, so the line's own terminator serves and no copy is needed.
// ERANGE only rejects overflow; underflow to a subnormal (or zero) is a
// faithful parse of a value SaveReportsCsv can legitimately write.
Result<double> ParseValue(const char* begin, size_t line) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(begin, &end);
  const bool overflow = errno == ERANGE && std::fabs(value) == HUGE_VAL;
  // No-conversion must be checked before skipping trailing whitespace, or
  // a whitespace-only field would scan to the terminator and pass as 0.0.
  const bool empty = end == begin;
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  if (empty || (end != nullptr && *end != '\0') || overflow ||
      !std::isfinite(value)) {
    return RowError(line, "value is not a finite number: '" +
                              std::string(begin) + "'");
  }
  return value;
}

}  // namespace

Status SaveReportsCsv(const std::string& path,
                      const std::vector<SlotReport>& reports) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << kReportCsvHeader << '\n';
  char value[40];
  for (const SlotReport& report : reports) {
    // Ids are written as integers (a double column would silently round
    // user ids above 2^53); %.17g round-trips the value bits.
    std::snprintf(value, sizeof(value), "%.17g", report.value);
    out << report.user_id << ',' << report.slot << ',' << value << '\n';
  }
  // Close explicitly: most archives fit the stream buffer, so a disk-full
  // failure often only surfaces at the final flush, which the destructor
  // would swallow.
  out.close();
  if (out.fail()) return Status::Internal("write failure on " + path);
  return Status::OK();
}

Result<std::vector<SlotReport>> LoadReportsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<SlotReport> reports;
  std::string line;
  size_t line_no = 0;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line == kReportCsvHeader) {
      if (!first_content_line) {
        // Concatenated files: a second header mid-stream means two
        // archives were blindly appended; refuse rather than guess.
        return RowError(line_no, "duplicate header line");
      }
      first_content_line = false;
      continue;
    }
    first_content_line = false;

    std::string_view row = line;
    const size_t first_comma = row.find(',');
    const size_t second_comma =
        first_comma == std::string_view::npos
            ? std::string_view::npos
            : row.find(',', first_comma + 1);
    if (second_comma == std::string_view::npos) {
      return RowError(line_no, "want 3 comma-separated fields");
    }
    if (row.find(',', second_comma + 1) != std::string_view::npos) {
      return RowError(line_no, "trailing field after value");
    }
    SlotReport report;
    CAPP_ASSIGN_OR_RETURN(
        report.user_id,
        ParseId(row.substr(0, first_comma), line_no, "user_id"));
    CAPP_ASSIGN_OR_RETURN(
        uint64_t slot,
        ParseId(row.substr(first_comma + 1, second_comma - first_comma - 1),
                line_no, "slot"));
    if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
      if (slot > std::numeric_limits<size_t>::max()) {
        return RowError(line_no, "slot overflows size_t");
      }
    }
    report.slot = static_cast<size_t>(slot);
    CAPP_ASSIGN_OR_RETURN(
        report.value, ParseValue(line.c_str() + second_comma + 1, line_no));
    reports.push_back(report);
  }
  if (in.bad()) {
    // A mid-file read error ends getline exactly like EOF would; without
    // this check a truncated read would pass as a complete archive.
    return Status::Internal("read error on " + path);
  }
  return reports;
}

void IngestAll(const std::vector<SlotReport>& reports,
               CollectorSession* collector) {
  for (const SlotReport& report : reports) collector->Ingest(report);
}

}  // namespace capp
