#include "stream/report_io.h"

#include <cmath>

#include "data/csv.h"

namespace capp {

Status SaveReportsCsv(const std::string& path,
                      const std::vector<SlotReport>& reports) {
  std::vector<std::vector<double>> rows;
  rows.reserve(reports.size());
  for (const SlotReport& report : reports) {
    rows.push_back({static_cast<double>(report.user_id),
                    static_cast<double>(report.slot), report.value});
  }
  return SaveCsv(path, rows, "user_id,slot,value");
}

Result<std::vector<SlotReport>> LoadReportsCsv(const std::string& path) {
  CAPP_ASSIGN_OR_RETURN(auto rows, LoadCsv(path, /*skip_header=*/true));
  std::vector<SlotReport> reports;
  reports.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 3) {
      return Status::InvalidArgument("report row " + std::to_string(i) +
                                     " has " + std::to_string(row.size()) +
                                     " fields, want 3");
    }
    if (row[0] < 0.0 || row[1] < 0.0 || !std::isfinite(row[2])) {
      return Status::InvalidArgument("report row " + std::to_string(i) +
                                     " out of range");
    }
    SlotReport report;
    report.user_id = static_cast<uint64_t>(row[0]);
    report.slot = static_cast<size_t>(row[1]);
    report.value = row[2];
    reports.push_back(report);
  }
  return reports;
}

void IngestAll(const std::vector<SlotReport>& reports,
               CollectorSession* collector) {
  for (const SlotReport& report : reports) collector->Ingest(report);
}

}  // namespace capp
