#include "stream/collector.h"

#include "core/check.h"
#include "core/math_utils.h"
#include "stream/smoothing.h"

namespace capp {

Result<StreamCollector> StreamCollector::Create(CollectorOptions options) {
  if (options.smoothing_window < 1 || options.smoothing_window % 2 == 0) {
    return Status::InvalidArgument("smoothing_window must be odd and >= 1");
  }
  return StreamCollector(options);
}

std::vector<double> StreamCollector::Publish(
    std::span<const double> reports) const {
  auto smoothed = SimpleMovingAverage(reports, options_.smoothing_window);
  CAPP_CHECK(smoothed.ok());
  std::vector<double> out = std::move(smoothed).value();
  if (options_.clamp_to_unit) {
    for (double& v : out) v = Clamp(v, 0.0, 1.0);
  }
  return out;
}

double StreamCollector::EstimateMean(std::span<const double> reports) const {
  // SMA is mean-preserving up to boundary effects; estimating from the raw
  // reports avoids even those (the paper notes smoothing "has no impact on
  // the mean").
  return Mean(reports);
}

}  // namespace capp
