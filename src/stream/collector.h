// Data-collector-side reconstruction of published streams (Step 3 of the
// paper's framework, Fig. 1): given the perturbed reports of a subsequence,
// produce the published stream (optionally SMA-smoothed) and subsequence
// statistics such as the estimated mean (Section III-B).
#ifndef CAPP_STREAM_COLLECTOR_H_
#define CAPP_STREAM_COLLECTOR_H_

#include <span>
#include <vector>

#include "core/status.h"

namespace capp {

/// Options controlling collector-side reconstruction.
struct CollectorOptions {
  /// Centered SMA window (odd). 1 disables smoothing. The paper uses 3.
  int smoothing_window = 3;
  /// If true, clamp the published values into [0,1] (the data domain).
  /// The paper publishes raw perturbed values; clamping is an optional
  /// post-processing step that never hurts w-event privacy.
  bool clamp_to_unit = false;
};

/// Reconstructs the published stream from perturbed reports.
class StreamCollector {
 public:
  /// Validates options.
  static Result<StreamCollector> Create(CollectorOptions options = {});

  /// The published stream: SMA-smoothed (and optionally clamped) reports.
  std::vector<double> Publish(std::span<const double> reports) const;

  /// Estimated mean of the subsequence (mean of the published stream).
  double EstimateMean(std::span<const double> reports) const;

  const CollectorOptions& options() const { return options_; }

 private:
  explicit StreamCollector(CollectorOptions options) : options_(options) {}

  CollectorOptions options_;
};

}  // namespace capp

#endif  // CAPP_STREAM_COLLECTOR_H_
