#include "stream/accountant.h"

#include <algorithm>
#include <string>

#include "core/check.h"

namespace capp {

void WEventAccountant::Record(size_t slot, double epsilon) {
  CAPP_CHECK(epsilon >= 0.0);
  if (slot >= spend_.size()) spend_.resize(slot + 1, 0.0);
  spend_[slot] += epsilon;
}

void WEventAccountant::RecordRun(size_t begin_slot, size_t n,
                                 double epsilon) {
  CAPP_CHECK(epsilon >= 0.0);
  if (n == 0) return;
  const size_t end = begin_slot + n;
  if (end > spend_.size()) spend_.resize(end, 0.0);
  for (size_t slot = begin_slot; slot < end; ++slot) spend_[slot] += epsilon;
}

double WEventAccountant::SlotSpend(size_t slot) const {
  return slot < spend_.size() ? spend_[slot] : 0.0;
}

double WEventAccountant::TotalSpend() const {
  double total = 0.0;
  for (double s : spend_) total += s;
  return total;
}

double WEventAccountant::MaxWindowSpend(size_t w) const {
  CAPP_CHECK(w >= 1);
  if (spend_.empty()) return 0.0;
  const size_t n = spend_.size();
  const size_t window = std::min(w, n);
  double sum = 0.0;
  for (size_t i = 0; i < window; ++i) sum += spend_[i];
  double best = sum;
  for (size_t i = window; i < n; ++i) {
    sum += spend_[i] - spend_[i - window];
    best = std::max(best, sum);
  }
  return best;
}

Status WEventAccountant::VerifyBudget(size_t w, double epsilon,
                                      double tolerance) const {
  const double max_spend = MaxWindowSpend(w);
  if (max_spend > epsilon + tolerance) {
    return Status::FailedPrecondition(
        "w-event budget exceeded: window spend " + std::to_string(max_spend) +
        " > epsilon " + std::to_string(epsilon));
  }
  return Status::OK();
}

void WEventAccountant::Reset() { spend_.clear(); }

}  // namespace capp
