// Collector-side post-processing: Simple Moving Average smoothing.
//
// The paper (Section IV-A, Lemma IV.1) smooths perturbed streams with a
// centered SMA of window size 2k+1; positive and negative SW deviations
// cancel, reducing per-point variance by a factor ~ 2k+1 while leaving the
// subsequence mean unchanged. At the boundaries, the average is taken over
// the values that exist (the paper's convention).
#ifndef CAPP_STREAM_SMOOTHING_H_
#define CAPP_STREAM_SMOOTHING_H_

#include <span>
#include <vector>

#include "core/status.h"

namespace capp {

/// Centered simple moving average with total window size `window`
/// (must be odd and >= 1). window == 1 returns the input unchanged.
/// Boundary windows shrink to the available values.
Result<std::vector<double>> SimpleMovingAverage(std::span<const double> xs,
                                                int window);

/// Scratch-buffer variant for per-user hot loops: writes the smoothed
/// series into `out` and keeps the prefix sums in `prefix_scratch`, both
/// resized as needed so repeated calls reuse their capacity. Values are
/// identical to SimpleMovingAverage (which wraps this). `xs` must not
/// alias `out` or `prefix_scratch`.
Status SimpleMovingAverageInto(std::span<const double> xs, int window,
                               std::vector<double>& out,
                               std::vector<double>& prefix_scratch);

/// Convenience overload used throughout the paper: window = 3.
std::vector<double> Sma3(std::span<const double> xs);

}  // namespace capp

#endif  // CAPP_STREAM_SMOOTHING_H_
