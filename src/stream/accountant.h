// Runtime w-event privacy-budget accounting.
//
// Every StreamPerturber reports each time slot's privacy spend to an
// optional WEventAccountant. The accountant maintains the per-slot ledger
// and can answer "what is the maximum total budget spent inside any sliding
// window of w consecutive slots?" -- the quantity that must stay <= epsilon
// for w-event LDP (Definition 3 of the paper). Tests run every algorithm
// against the ledger; a violation indicates a budget-accounting bug (e.g.,
// in BA-SW absorption or PP-S segmentation).
#ifndef CAPP_STREAM_ACCOUNTANT_H_
#define CAPP_STREAM_ACCOUNTANT_H_

#include <cstddef>
#include <vector>

#include "core/status.h"

namespace capp {

/// Ledger of per-slot privacy spends for one user's stream.
class WEventAccountant {
 public:
  WEventAccountant() = default;

  /// Records that slot `slot` (0-based, monotonically non-decreasing across
  /// calls) spent `epsilon` budget. Multiple records for the same slot
  /// accumulate (e.g., dissimilarity + publication spends in BA-SW).
  void Record(size_t slot, double epsilon);

  /// Records `epsilon` at each of the `n` slots [begin_slot, begin_slot+n).
  /// Ledger state is identical to n individual Record calls; the vector is
  /// grown once, which is what the batched perturbation path relies on.
  void RecordRun(size_t begin_slot, size_t n, double epsilon);

  /// Number of slots with at least one record (== highest slot + 1).
  size_t num_slots() const { return spend_.size(); }

  /// Total spend at one slot (0 if the slot was never recorded).
  double SlotSpend(size_t slot) const;

  /// Total spend across all slots.
  double TotalSpend() const;

  /// Maximum of the window sums over all windows of `w` consecutive slots.
  /// Returns 0 for an empty ledger. w must be >= 1.
  double MaxWindowSpend(size_t w) const;

  /// OK iff MaxWindowSpend(w) <= epsilon (+ tolerance for FP rounding).
  Status VerifyBudget(size_t w, double epsilon,
                      double tolerance = 1e-9) const;

  /// Clears the ledger.
  void Reset();

 private:
  std::vector<double> spend_;
};

}  // namespace capp

#endif  // CAPP_STREAM_ACCOUNTANT_H_
