// Gap-fill policy for published per-user streams.
//
// A collector may miss slots for a user (lossy transport, sampling
// algorithms that skip uploads). The library-wide publication policy is
// last-observation-carried-forward: a missing slot repeats the user's last
// preceding report, and slots before the first report publish the domain
// midpoint 0.5 (the no-information prior of the [0,1] data domain). Both
// CollectorSession and the engine's ShardedCollector share this helper so
// the policy cannot drift between the serial and sharded paths.
#ifndef CAPP_STREAM_GAP_FILL_H_
#define CAPP_STREAM_GAP_FILL_H_

#include <span>
#include <vector>

namespace capp {

/// The value published for slots that precede a user's first report: the
/// midpoint of the [0,1] data domain.
inline constexpr double kGapFillPrior = 0.5;

/// Returns a copy of `xs` with every NaN entry (a missing slot) replaced by
/// the last preceding non-NaN value, or `prior` when no report precedes it.
/// Non-NaN entries pass through unchanged.
std::vector<double> FillGapsForward(std::span<const double> xs,
                                    double prior = kGapFillPrior);

}  // namespace capp

#endif  // CAPP_STREAM_GAP_FILL_H_
