// The engine's published-stream digest (digest v2).
//
// A fleet run's determinism contract is summarized in one number: the XOR
// over users of a per-user hash of (user id, published stream bits). XOR
// commutes, so the digest is identical for every thread count, transport,
// and ingest order that delivers the same per-user streams.
//
// v1 hashed each stream with per-byte FNV-1a -- a serial xor-multiply
// chain costing ~9 ns per slot, which by PR 6 was one of the two largest
// per-report costs. v2 (this header) replaces it with a wyhash-style
// chunk digest: each 8-byte word is folded through one 128-bit multiply
// (the "mum" primitive), and two interleaved lanes break the serial
// dependency so the hash runs at a word per few cycles instead of eight
// serial multiplies per word. The per-user hash changed, so every
// committed digest changed once with it (see bench/baselines/README.md);
// the XOR-combination -- and with it thread/transport/replay invariance
// -- is unchanged.
//
// Header-only: the hash is called once per simulated user inside the
// fleet's worker loop, and the test oracle must be able to reproduce it
// exactly, so there is one inline definition both link against.
#ifndef CAPP_CORE_STREAM_DIGEST_H_
#define CAPP_CORE_STREAM_DIGEST_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace capp {

/// 128-bit multiply folded to 64 bits: the wyhash/xxh3 mixing primitive.
/// One widening multiply plus one xor -- full avalanche across both words.
inline uint64_t DigestMum(uint64_t a, uint64_t b) {
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return static_cast<uint64_t>(product) ^
         static_cast<uint64_t>(product >> 64);
}

/// Per-user chunk digest of a published stream: a pure function of
/// (user_id, the stream's length and bit patterns). The fleet digest is
/// the XOR of this hash over all users. The final mix folds the length
/// in, so streams that are prefixes of each other hash differently.
inline uint64_t UserStreamDigest(uint64_t user_id,
                                 std::span<const double> published) {
  // wyhash's published secret constants (odd, high-entropy).
  constexpr uint64_t kSecret0 = 0xA0761D6478BD642FULL;
  constexpr uint64_t kSecret1 = 0xE7037ED1A0B428DBULL;
  constexpr uint64_t kSecret2 = 0x8EBC6AF09C88C6E3ULL;
  constexpr uint64_t kSecret3 = 0x589965CC75374CC3ULL;
  uint64_t lane0 = DigestMum(user_id ^ kSecret0, kSecret1);
  uint64_t lane1 = DigestMum(user_id ^ kSecret2, kSecret3);
  size_t i = 0;
  const size_t n = published.size();
  for (; i + 2 <= n; i += 2) {
    lane0 = DigestMum(std::bit_cast<uint64_t>(published[i]) ^ kSecret1,
                      lane0 ^ kSecret2);
    lane1 = DigestMum(std::bit_cast<uint64_t>(published[i + 1]) ^ kSecret3,
                      lane1 ^ kSecret0);
  }
  if (i < n) {
    lane0 = DigestMum(std::bit_cast<uint64_t>(published[i]) ^ kSecret1,
                      lane0 ^ kSecret2);
  }
  return DigestMum(lane0 ^ static_cast<uint64_t>(n), lane1 ^ kSecret3);
}

}  // namespace capp

#endif  // CAPP_CORE_STREAM_DIGEST_H_
