#include "core/parse.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <string>

namespace capp {

bool ParseUint64Text(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseIntText(std::string_view text, int min_value, int* out) {
  uint64_t value = 0;
  if (!ParseUint64Text(text, &value)) return false;
  if (value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return false;
  }
  const int parsed = static_cast<int>(value);
  if (parsed < min_value) return false;
  *out = parsed;
  return true;
}

bool ParseDoubleText(std::string_view text, double* out) {
  if (text.empty() || text.front() == ' ') return false;
  const std::string copy(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  if (!(value == value) || value > std::numeric_limits<double>::max() ||
      value < std::numeric_limits<double>::lowest()) {
    return false;  // NaN or infinite
  }
  *out = value;
  return true;
}

}  // namespace capp
