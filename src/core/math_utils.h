// Small numeric helpers shared across the library: compensated summation,
// streaming moments, grids, and comparison utilities.
#ifndef CAPP_CORE_MATH_UTILS_H_
#define CAPP_CORE_MATH_UTILS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "core/check.h"

namespace capp {

/// Kahan–Neumaier compensated accumulator. Sums long streams of doubles
/// (48k-point datasets, million-sample moment checks) without drift.
class KahanSum {
 public:
  void Add(double x);
  /// Current compensated total.
  double Total() const { return sum_ + compensation_; }
  void Reset();

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Welford streaming mean/variance. Numerically stable one-pass moments.
class RunningMoments {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double Mean() const;
  /// Population variance (divide by n). 0 for fewer than 1 sample.
  double VariancePopulation() const;
  /// Sample variance (divide by n-1). 0 for fewer than 2 samples.
  double VarianceSample() const;
  double StdDevPopulation() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> xs);

/// Population variance; 0 for spans with fewer than 2 elements.
double Variance(std::span<const double> xs);

/// Clamps x into [lo, hi]. NaN passes through (both comparisons are
/// false). Inline: every perturbation hot path clamps per slot.
inline double Clamp(double x, double lo, double hi) {
  CAPP_DCHECK(lo <= hi);
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

/// Index of `value`'s equal-width bin over [lo, hi] (num_bins >= 1);
/// out-of-range values clamp into the edge bins (callers that must
/// distinguish outliers check the range first). This one function is the
/// bin definition shared by the SW-EM output bucketization and the
/// collector's streaming histogram tier -- both must bin a value
/// identically, bit for bit, for the streaming EM reconstruction to
/// equal the pooled-report oracle, so neither side may reimplement it.
/// The scale factor is written as a single multiply so the division
/// hoists out of per-report loops (lo/hi/num_bins are loop-invariant
/// there, and an FP divide per report was the histogram tier's largest
/// ingest cost). `value` must not be NaN (the comparison-then-cast would
/// be undefined).
inline int FixedBinIndex(double value, double lo, double hi, int num_bins) {
  CAPP_DCHECK(num_bins >= 1 && lo < hi);
  const double scale = static_cast<double>(num_bins) / (hi - lo);
  // Clamp in floating point, before the int cast: a wildly out-of-range
  // value (1e300 telemetry garbage) must land in an edge bin, not hit an
  // undefined double->int conversion.
  const double position = (value - lo) * scale;
  if (!(position > 0.0)) return 0;
  if (position >= static_cast<double>(num_bins)) return num_bins - 1;
  return static_cast<int>(position);
}

/// n evenly spaced points from lo to hi inclusive (n >= 2), or {lo} if n==1.
std::vector<double> LinSpace(double lo, double hi, size_t n);

/// Relative-or-absolute approximate equality.
bool NearlyEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-12);

/// Integral of y^k over [lo, hi] (power rule); k >= 0.
double PowerIntegral(double lo, double hi, int k);

}  // namespace capp

#endif  // CAPP_CORE_MATH_UTILS_H_
