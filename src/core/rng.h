// Deterministic random number generation for all stochastic components.
//
// We implement xoshiro256++ seeded via splitmix64 rather than relying on
// std::*_distribution, whose outputs are implementation-defined; this keeps
// every test, benchmark, and experiment bit-reproducible across platforms.
#ifndef CAPP_CORE_RNG_H_
#define CAPP_CORE_RNG_H_

#include <cstdint>

namespace capp {

/// One stateless splitmix64 mixing step: a high-quality 64-bit hash of `x`.
/// Used to derive uncorrelated per-user seeds from (base seed, user id)
/// pairs; the engine's determinism contract depends on this being a pure
/// function of its input.
uint64_t SplitMix64Mix(uint64_t x);

/// xoshiro256++ pseudo-random generator with a stable set of sampling
/// helpers. Copyable; copies continue independently from the same state.
class Rng {
 public:
  /// Seeds the generator. Any 64-bit seed is acceptable (expanded through
  /// splitmix64, so small consecutive seeds yield uncorrelated streams).
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi (returns lo when equal).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  uint64_t UniformInt(uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Laplace(0, scale) variate; scale > 0.
  double Laplace(double scale);

  /// Standard normal variate (polar Box-Muller, deterministic).
  double Gaussian();

  /// Normal(mean, stddev) variate.
  double Gaussian(double mean, double stddev);

  /// Exponential variate with the given rate (mean 1/rate); rate > 0.
  double Exponential(double rate);

  /// Pareto variate with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_m, double alpha);

  /// Derives an independent child generator; useful to give each simulated
  /// user its own stream without correlations.
  Rng Fork();

 private:
  uint64_t s_[4];
  // Cached second output of the Box-Muller pair.
  double gauss_spare_ = 0.0;
  bool has_gauss_spare_ = false;
};

}  // namespace capp

#endif  // CAPP_CORE_RNG_H_
