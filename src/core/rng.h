// Deterministic random number generation for all stochastic components.
//
// We implement xoshiro256++ seeded via splitmix64 rather than relying on
// std::*_distribution, whose outputs are implementation-defined; this keeps
// every test, benchmark, and experiment bit-reproducible across platforms.
#ifndef CAPP_CORE_RNG_H_
#define CAPP_CORE_RNG_H_

#include <cmath>
#include <cstdint>
#include <span>

namespace capp {

/// One stateless splitmix64 mixing step: a high-quality 64-bit hash of `x`.
/// Used to derive uncorrelated per-user seeds from (base seed, user id)
/// pairs; the engine's determinism contract depends on this being a pure
/// function of its input.
uint64_t SplitMix64Mix(uint64_t x);

/// xoshiro256++ pseudo-random generator with a stable set of sampling
/// helpers. Copyable; copies continue independently from the same state.
class Rng {
 public:
  /// Seeds the generator. Any 64-bit seed is acceptable (expanded through
  /// splitmix64, so small consecutive seeds yield uncorrelated streams).
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL);

  // The per-draw samplers are defined inline below: every perturbation and
  // workload-synthesis hot loop draws per slot, and a cross-TU call per
  // draw was measurable there.

  /// Next raw 64-bit output.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble() {
    // 53 high bits -> [0, 1).
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Fills `out` with out.size() consecutive UniformDouble() draws. The
  /// sequence is bit-identical to calling UniformDouble() out.size() times;
  /// the generator state is kept in registers across an unrolled xoshiro
  /// loop, which is what makes block-filling ~3x faster than scalar calls.
  /// Batched samplers build on this to stay bit-compatible with their
  /// scalar counterparts.
  void FillUniform(std::span<double> out);

  /// Fills `out` with out.size() consecutive Gaussian() draws. The draw
  /// order is pinned: bit-identical to calling Gaussian() out.size() times,
  /// including the cached-spare semantics (a pending Box-Muller spare is
  /// consumed first, and an odd-length fill leaves the pair's second output
  /// cached for the next draw), so scalar and block callers can be mixed
  /// freely. Like FillUniform, the xoshiro state lives in registers across
  /// the whole block and pairs are written straight to `out`, skipping the
  /// per-call spare bookkeeping -- workload synthesis draws one noise value
  /// per slot, which made the scalar call overhead measurable at fleet
  /// scale.
  void FillGaussian(std::span<double> out);

  /// Uniform double in [lo, hi). Requires lo <= hi (returns lo when equal).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  uint64_t UniformInt(uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Laplace(0, scale) variate; scale > 0.
  double Laplace(double scale);

  /// Standard normal variate (polar Box-Muller, deterministic).
  double Gaussian() {
    if (has_gauss_spare_) {
      has_gauss_spare_ = false;
      return gauss_spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * UniformDouble() - 1.0;
      v = 2.0 * UniformDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    gauss_spare_ = v * factor;
    has_gauss_spare_ = true;
    return u * factor;
  }

  /// Normal(mean, stddev) variate.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential variate with the given rate (mean 1/rate); rate > 0.
  double Exponential(double rate);

  /// Pareto variate with scale x_m > 0 and shape alpha > 0.
  double Pareto(double x_m, double alpha);

  /// Derives an independent child generator; useful to give each simulated
  /// user its own stream without correlations.
  Rng Fork();

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  // Cached second output of the Box-Muller pair.
  double gauss_spare_ = 0.0;
  bool has_gauss_spare_ = false;
};

}  // namespace capp

#endif  // CAPP_CORE_RNG_H_
