#include "core/math_utils.h"

#include <cmath>

#include "core/check.h"

namespace capp {

void KahanSum::Add(double x) {
  const double t = sum_ + x;
  if (std::fabs(sum_) >= std::fabs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

void KahanSum::Reset() {
  sum_ = 0.0;
  compensation_ = 0.0;
}

void RunningMoments::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningMoments::Mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningMoments::VariancePopulation() const {
  return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningMoments::VarianceSample() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::StdDevPopulation() const {
  return std::sqrt(VariancePopulation());
}

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  KahanSum sum;
  for (double x : xs) sum.Add(x);
  return sum.Total() / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  RunningMoments m;
  for (double x : xs) m.Add(x);
  return m.VariancePopulation();
}

std::vector<double> LinSpace(double lo, double hi, size_t n) {
  std::vector<double> out;
  if (n == 0) return out;
  if (n == 1) {
    out.push_back(lo);
    return out;
  }
  out.reserve(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  out.back() = hi;  // avoid FP drift on the endpoint
  return out;
}

bool NearlyEqual(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

double PowerIntegral(double lo, double hi, int k) {
  CAPP_DCHECK(k >= 0);
  const double kk = static_cast<double>(k + 1);
  return (std::pow(hi, kk) - std::pow(lo, kk)) / kk;
}

}  // namespace capp
