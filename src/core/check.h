// Internal invariant checks. These are for programming errors inside the
// library, never for validating user input (user input goes through
// Status/Result). CAPP_CHECK is always on; CAPP_DCHECK compiles out in
// release builds (NDEBUG).
#ifndef CAPP_CORE_CHECK_H_
#define CAPP_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace capp::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CAPP_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace capp::internal

#define CAPP_CHECK(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      ::capp::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                             \
  } while (false)

#ifdef NDEBUG
#define CAPP_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define CAPP_DCHECK(cond) CAPP_CHECK(cond)
#endif

#endif  // CAPP_CORE_CHECK_H_
