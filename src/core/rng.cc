#include "core/rng.h"

#include <cmath>

#include "core/check.h"

namespace capp {
namespace {

// splitmix64: seed expander recommended by the xoshiro authors.
uint64_t SplitMix64(uint64_t* state) {
  return SplitMix64Mix(*state += 0x9E3779B97F4A7C15ULL);
}

}  // namespace

uint64_t SplitMix64Mix(uint64_t x) {
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state; splitmix64 cannot
  // produce four zero outputs in a row, but keep a cheap guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

void Rng::FillUniform(std::span<double> out) {
  // Same recurrence as NextUint64, with the state held in locals so the
  // compiler keeps the four lanes in registers across the unrolled body.
  uint64_t s0 = s_[0];
  uint64_t s1 = s_[1];
  uint64_t s2 = s_[2];
  uint64_t s3 = s_[3];
  const auto step = [&]() -> double {
    const uint64_t result = Rotl(s0 + s3, 23) + s0;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
    return static_cast<double>(result >> 11) * 0x1.0p-53;
  };
  size_t i = 0;
  for (; i + 4 <= out.size(); i += 4) {
    out[i] = step();
    out[i + 1] = step();
    out[i + 2] = step();
    out[i + 3] = step();
  }
  for (; i < out.size(); ++i) out[i] = step();
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

void Rng::FillGaussian(std::span<double> out) {
  size_t i = 0;
  const size_t n = out.size();
  if (i < n && has_gauss_spare_) {
    out[i++] = gauss_spare_;
    has_gauss_spare_ = false;
  }
  // Same polar Box-Muller recurrence as the scalar Gaussian(), with the
  // xoshiro lanes in locals (registers) for the whole block, like
  // FillUniform. The rejection loop makes uniform consumption
  // data-dependent, so the draw order is pinned by construction: pairs are
  // accepted in exactly the order the scalar path would accept them.
  uint64_t s0 = s_[0];
  uint64_t s1 = s_[1];
  uint64_t s2 = s_[2];
  uint64_t s3 = s_[3];
  const auto step = [&]() -> double {
    const uint64_t result = Rotl(s0 + s3, 23) + s0;
    const uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = Rotl(s3, 45);
    return static_cast<double>(result >> 11) * 0x1.0p-53;
  };
  const auto pair = [&](double& g0, double& g1) {
    double u, v, s;
    do {
      u = 2.0 * step() - 1.0;
      v = 2.0 * step() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    g0 = u * factor;
    g1 = v * factor;
  };
  for (; i + 2 <= n; i += 2) pair(out[i], out[i + 1]);
  if (i < n) {
    // Odd tail: the pair's second output becomes the cached spare, exactly
    // as a scalar Gaussian() call would leave it.
    double g1;
    pair(out[i], g1);
    gauss_spare_ = g1;
    has_gauss_spare_ = true;
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Rng::Uniform(double lo, double hi) {
  CAPP_DCHECK(lo <= hi);
  return lo + (hi - lo) * UniformDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  CAPP_CHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Laplace(double scale) {
  CAPP_DCHECK(scale > 0.0);
  // Inverse CDF on u in (-1/2, 1/2).
  double u = UniformDouble() - 0.5;
  // Guard the log singularity at |u| == 1/2.
  if (u == -0.5) u = -0.5 + 1e-16;
  const double sign = (u < 0) ? -1.0 : 1.0;
  return -scale * sign * std::log1p(-2.0 * std::fabs(u));
}

double Rng::Exponential(double rate) {
  CAPP_DCHECK(rate > 0.0);
  double u = UniformDouble();
  if (u >= 1.0) u = 1.0 - 1e-16;
  return -std::log1p(-u) / rate;
}

double Rng::Pareto(double x_m, double alpha) {
  CAPP_DCHECK(x_m > 0.0 && alpha > 0.0);
  double u = UniformDouble();
  if (u >= 1.0) u = 1.0 - 1e-16;
  return x_m / std::pow(1.0 - u, 1.0 / alpha);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace capp
