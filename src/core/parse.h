// Strict text-to-number parsing for CLI surfaces (benches, examples,
// tools). The C library parsers accept leading whitespace, signs, and
// trailing garbage and saturate on overflow -- exactly the behaviors
// that turn a typo like "--trials=abc" or "25O000" into a silently
// wrong run. These helpers accept a value if and only if the whole
// string is its canonical decimal spelling.
#ifndef CAPP_CORE_PARSE_H_
#define CAPP_CORE_PARSE_H_

#include <cstdint>
#include <string_view>

namespace capp {

/// Parses a base-10 unsigned integer. The whole of `text` must be
/// digits; empty input, signs, whitespace, trailing garbage, and values
/// overflowing uint64 all return false.
bool ParseUint64Text(std::string_view text, uint64_t* out);

/// ParseUint64Text restricted to [min_value, INT_MAX].
bool ParseIntText(std::string_view text, int min_value, int* out);

/// Parses a finite double; the whole string must be consumed and no
/// leading whitespace is accepted.
bool ParseDoubleText(std::string_view text, double* out);

}  // namespace capp

#endif  // CAPP_CORE_PARSE_H_
