// Status and Result<T>: exception-free error handling for the capp public API.
//
// Fallible operations (configuration validation, parsing, estimation that can
// fail to converge) return Status or Result<T>. Hot-path operations such as
// Mechanism::Perturb are noexcept and assume a validated configuration.
#ifndef CAPP_CORE_STATUS_H_
#define CAPP_CORE_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace capp {

/// Canonical error codes, a deliberately small subset of the usual
/// database-engine set (RocksDB/Arrow style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kAlreadyExists = 7,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no message
/// allocation). Use the static constructors: Status::OK(),
/// Status::InvalidArgument("...") etc.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Result<T> holds either a T or an error Status. Accessing value() on an
/// error aborts (programming error); check ok() first or use value_or().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(v_).ok()) {
      // An OK status carries no value; this is a caller bug.
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  /// The error status; Status::OK() when this result holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  const T& value() const& {
    if (!ok()) DieOnBadAccess();
    return std::get<T>(v_);
  }
  T& value() & {
    if (!ok()) DieOnBadAccess();
    return std::get<T>(v_);
  }
  T&& value() && {
    if (!ok()) DieOnBadAccess();
    return std::get<T>(std::move(v_));
  }

  /// Returns the value or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  [[noreturn]] void DieOnBadAccess() const { std::abort(); }

  std::variant<Status, T> v_;
};

/// Propagates an error Status from an expression returning Status.
#define CAPP_RETURN_IF_ERROR(expr)                      \
  do {                                                  \
    ::capp::Status _capp_status = (expr);               \
    if (!_capp_status.ok()) return _capp_status;        \
  } while (false)

/// Evaluates a Result<T>-returning expression; on success binds the value to
/// `lhs`, on error returns the error status from the enclosing function.
#define CAPP_ASSIGN_OR_RETURN(lhs, expr)                \
  CAPP_ASSIGN_OR_RETURN_IMPL_(                          \
      CAPP_STATUS_CONCAT_(_capp_result, __LINE__), lhs, expr)

#define CAPP_STATUS_CONCAT_INNER_(a, b) a##b
#define CAPP_STATUS_CONCAT_(a, b) CAPP_STATUS_CONCAT_INNER_(a, b)
#define CAPP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)     \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace capp

#endif  // CAPP_CORE_STATUS_H_
