#include "core/piecewise_density.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/math_utils.h"

namespace capp {

Result<PiecewiseConstantDensity> PiecewiseConstantDensity::Create(
    std::vector<DensitySegment> segments) {
  std::vector<DensitySegment> kept;
  kept.reserve(segments.size());
  for (const auto& s : segments) {
    if (s.hi < s.lo) {
      return Status::InvalidArgument("segment with hi < lo");
    }
    if (s.density < 0.0) {
      return Status::InvalidArgument("negative density");
    }
    if (s.hi > s.lo) kept.push_back(s);
  }
  if (kept.empty()) {
    return Status::InvalidArgument("no segments with positive width");
  }
  std::sort(kept.begin(), kept.end(),
            [](const DensitySegment& a, const DensitySegment& b) {
              return a.lo < b.lo;
            });
  for (size_t i = 1; i < kept.size(); ++i) {
    if (std::fabs(kept[i].lo - kept[i - 1].hi) > 1e-9) {
      return Status::InvalidArgument("segments not contiguous");
    }
    kept[i].lo = kept[i - 1].hi;  // weld exactly
  }
  KahanSum mass;
  for (const auto& s : kept) mass.Add(s.density * (s.hi - s.lo));
  const double total = mass.Total();
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("density does not integrate to 1");
  }
  // Renormalize away the residual FP error so downstream moments are exact.
  for (auto& s : kept) s.density /= total;
  return PiecewiseConstantDensity(std::move(kept));
}

PiecewiseConstantDensity::PiecewiseConstantDensity(
    std::vector<DensitySegment> segments)
    : segments_(std::move(segments)) {
  cum_mass_.reserve(segments_.size());
  KahanSum mass;
  for (const auto& s : segments_) {
    mass.Add(s.density * (s.hi - s.lo));
    cum_mass_.push_back(mass.Total());
  }
  cum_mass_.back() = 1.0;
}

double PiecewiseConstantDensity::DensityAt(double y) const {
  if (y < support_lo() || y > support_hi()) return 0.0;
  for (const auto& s : segments_) {
    if (y < s.hi) return s.density;
  }
  return segments_.back().density;  // y == support_hi()
}

double PiecewiseConstantDensity::Cdf(double y) const {
  if (y <= support_lo()) return 0.0;
  if (y >= support_hi()) return 1.0;
  double acc = 0.0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const auto& s = segments_[i];
    if (y < s.hi) {
      return acc + s.density * (y - s.lo);
    }
    acc = cum_mass_[i];
  }
  return 1.0;
}

double PiecewiseConstantDensity::RawMoment(int k) const {
  CAPP_CHECK(k >= 0);
  KahanSum sum;
  for (const auto& s : segments_) {
    sum.Add(s.density * PowerIntegral(s.lo, s.hi, k));
  }
  return sum.Total();
}

double PiecewiseConstantDensity::CentralMoment(int k) const {
  CAPP_CHECK(k >= 0);
  if (k == 0) return 1.0;
  if (k == 1) return 0.0;
  const double mu = Mean();
  // Integrate (y - mu)^k segment by segment via substitution u = y - mu.
  KahanSum sum;
  for (const auto& s : segments_) {
    sum.Add(s.density * PowerIntegral(s.lo - mu, s.hi - mu, k));
  }
  return sum.Total();
}

double PiecewiseConstantDensity::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cum_mass_.begin(), cum_mass_.end(), u);
  const size_t idx =
      std::min(static_cast<size_t>(it - cum_mass_.begin()),
               segments_.size() - 1);
  const auto& s = segments_[idx];
  return rng.Uniform(s.lo, s.hi);
}

double PiecewiseConstantDensity::Quantile(double p) const {
  CAPP_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return support_lo();
  if (p >= 1.0) return support_hi();
  double prev_mass = 0.0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (p <= cum_mass_[i]) {
      const auto& s = segments_[i];
      const double within = p - prev_mass;
      if (s.density <= 0.0) return s.lo;
      return s.lo + within / s.density;
    }
    prev_mass = cum_mass_[i];
  }
  return support_hi();
}

}  // namespace capp
