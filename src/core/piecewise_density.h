// Exact representation of a piecewise-constant probability density.
//
// Every LDP mechanism in this library whose output density is piecewise
// constant (Square Wave, Piecewise Mechanism) is expressed through this
// class, which provides:
//   * exact moment computation (closed-form polynomial integrals, no
//     quadrature error) -- the ground truth against which the paper's
//     closed-form moment expressions are validated;
//   * exact sampling (segment choice by mass, then uniform within);
//   * density/CDF evaluation for deterministic privacy-ratio tests.
#ifndef CAPP_CORE_PIECEWISE_DENSITY_H_
#define CAPP_CORE_PIECEWISE_DENSITY_H_

#include <vector>

#include "core/rng.h"
#include "core/status.h"

namespace capp {

/// One constant-density segment [lo, hi) with density `density` (>= 0).
struct DensitySegment {
  double lo = 0.0;
  double hi = 0.0;
  double density = 0.0;
};

/// A validated piecewise-constant density over a finite support.
class PiecewiseConstantDensity {
 public:
  /// Builds a density from contiguous, non-overlapping segments sorted by
  /// `lo`. Zero-width segments are dropped. Fails unless the total mass is
  /// 1 within tolerance (then renormalizes exactly).
  static Result<PiecewiseConstantDensity> Create(
      std::vector<DensitySegment> segments);

  /// Support bounds.
  double support_lo() const { return segments_.front().lo; }
  double support_hi() const { return segments_.back().hi; }
  const std::vector<DensitySegment>& segments() const { return segments_; }

  /// Density at y (0 outside support; right-continuous at breakpoints).
  double DensityAt(double y) const;

  /// P[Y <= y].
  double Cdf(double y) const;

  /// Raw moment E[Y^k], exact.
  double RawMoment(int k) const;

  /// E[Y].
  double Mean() const { return RawMoment(1); }

  /// Central moment E[(Y - E[Y])^k], exact (binomial expansion over raw
  /// moments computed with compensated summation).
  double CentralMoment(int k) const;

  /// Var[Y].
  double Variance() const { return CentralMoment(2); }

  /// Draws one sample.
  double Sample(Rng& rng) const;

  /// Smallest y with Cdf(y) >= p, for p in [0,1].
  double Quantile(double p) const;

 private:
  explicit PiecewiseConstantDensity(std::vector<DensitySegment> segments);

  std::vector<DensitySegment> segments_;
  // Cumulative masses: cum_mass_[i] = mass of segments [0..i].
  std::vector<double> cum_mass_;
};

}  // namespace capp

#endif  // CAPP_CORE_PIECEWISE_DENSITY_H_
