#include "telemetry/registry.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "core/check.h"

namespace capp::telemetry {
namespace {

// %.9g round-trips every boundary we emit (they are exact powers of two
// minus one, scaled by 1e-9 for seconds) and keeps golden output stable.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string FormatU64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

std::string FormatI64(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

// The `le` boundary of bucket b in exporter units: raw for bytes,
// seconds for nanosecond histograms.
std::string BucketBoundary(size_t bucket, HistogramUnit unit) {
  const uint64_t upper = Histogram::BucketUpperBound(bucket);
  if (unit == HistogramUnit::kNanoseconds) {
    return FormatDouble(static_cast<double>(upper) * 1e-9);
  }
  return FormatDouble(static_cast<double>(upper));
}

size_t HighestOccupiedBucket(const HistogramSnapshot& snap) {
  size_t highest = 0;
  for (size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    if (snap.buckets[b] != 0) highest = b;
  }
  return highest;
}

double ScaledSum(const HistogramSnapshot& snap, HistogramUnit unit) {
  const double raw = static_cast<double>(snap.sum);
  return unit == HistogramUnit::kNanoseconds ? raw * 1e-9 : raw;
}

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Entry::Kind::kCounter;
    entry.help = std::string(help);
    entry.counter = std::make_unique<Counter>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  CAPP_CHECK(it->second.kind == Entry::Kind::kCounter);
  return *it->second.counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Entry::Kind::kGauge;
    entry.help = std::string(help);
    entry.gauge = std::make_unique<Gauge>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  CAPP_CHECK(it->second.kind == Entry::Kind::kGauge);
  return *it->second.gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         HistogramUnit unit,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Entry entry;
    entry.kind = Entry::Kind::kHistogram;
    entry.help = std::string(help);
    entry.unit = unit;
    entry.histogram = std::make_unique<Histogram>();
    it = metrics_.emplace(std::string(name), std::move(entry)).first;
  }
  CAPP_CHECK(it->second.kind == Entry::Kind::kHistogram);
  CAPP_CHECK(it->second.unit == unit);
  return *it->second.histogram;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Entry::Kind::kCounter) {
    return 0;
  }
  return it->second.counter->Value();
}

int64_t MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Entry::Kind::kGauge) {
    return 0;
  }
  return it->second.gauge->Value();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, entry] : metrics_) {
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + FormatU64(entry.counter->Value()) + "\n";
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatI64(entry.gauge->Value()) + "\n";
        break;
      case Entry::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        const HistogramSnapshot snap = entry.histogram->Snapshot();
        const size_t highest = HighestOccupiedBucket(snap);
        uint64_t cumulative = 0;
        for (size_t b = 0; b <= highest; ++b) {
          cumulative += snap.buckets[b];
          out += name + "_bucket{le=\"" + BucketBoundary(b, entry.unit) +
                 "\"} " + FormatU64(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + FormatU64(snap.count()) + "\n";
        out += name + "_sum " + FormatDouble(ScaledSum(snap, entry.unit)) +
               "\n";
        out += name + "_count " + FormatU64(snap.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const ClockInfo& clock = Clock();
  std::string out = "{\"clock\":{\"source\":";
  out += clock.rdtsc ? "\"rdtsc\"" : "\"steady_clock\"";
  out += ",\"ns_per_tick\":";
  out += FormatDouble(clock.ns_per_tick);
  out += "}";

  bool first = true;
  out += ",\"counters\":{";
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind != Entry::Kind::kCounter) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    out += FormatU64(entry.counter->Value());
  }
  out += "}";

  first = true;
  out += ",\"gauges\":{";
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind != Entry::Kind::kGauge) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    out += FormatI64(entry.gauge->Value());
  }
  out += "}";

  first = true;
  out += ",\"histograms\":{";
  for (const auto& [name, entry] : metrics_) {
    if (entry.kind != Entry::Kind::kHistogram) continue;
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    const HistogramSnapshot snap = entry.histogram->Snapshot();
    out += ":{\"unit\":";
    out += entry.unit == HistogramUnit::kNanoseconds ? "\"seconds\""
                                                     : "\"bytes\"";
    out += ",\"count\":";
    out += FormatU64(snap.count());
    out += ",\"sum\":";
    out += FormatDouble(ScaledSum(snap, entry.unit));
    out += ",\"buckets\":[";
    const size_t highest = HighestOccupiedBucket(snap);
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= highest; ++b) {
      cumulative += snap.buckets[b];
      if (b != 0) out += ",";
      out += "{\"le\":";
      out += BucketBoundary(b, entry.unit);
      out += ",\"count\":";
      out += FormatU64(cumulative);
      out += "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  const std::string json = RenderJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open metrics json file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool newline_ok = std::fputc('\n', f) != EOF;
  const int close_rc = std::fclose(f);
  if (written != json.size() || !newline_ok || close_rc != 0) {
    return Status::Internal("short write to metrics json file: " + path);
  }
  return Status::OK();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        entry.counter->Reset();
        break;
      case Entry::Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Entry::Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace capp::telemetry
