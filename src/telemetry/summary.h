// Shared end-of-run summary rendering for the fleet and collector
// binaries. Both used to hand-format the same transport/WAL counters and
// the two blocks drifted; this is the one copy.
#ifndef CAPP_TELEMETRY_SUMMARY_H_
#define CAPP_TELEMETRY_SUMMARY_H_

#include <cstdint>
#include <string>

#include "storage/wal.h"
#include "transport/transport.h"

namespace capp::telemetry {

/// What a finished run wants summarized; null sections are omitted.
struct RunSummary {
  /// Transport counters (frames, runs, stalls, wire bytes, per-consumer
  /// utilization). Null for kDirect runs, which have no transport tier.
  const TransportStats* transport = nullptr;
  /// When true, an "owned-shard ingest" line reports the seqlock retries.
  bool owned_shards = false;
  uint64_t seqlock_read_retries = 0;
  /// WAL session counters. Null when the run was not durable.
  const WalStats* wal = nullptr;
};

/// Multi-line human-readable summary (trailing newline included; empty
/// string when every section is omitted):
///
///   transport: 782 frames carried 50000 runs (1000000 reports), ...
///     consumer 0: 12500 runs (25%)
///   owned-shard ingest: 0 seqlock read retrie(s)
///   wal: 100 frame(s) appended (0.8 MB), 3 fsync(s), ...
std::string RenderSummary(const RunSummary& summary);

}  // namespace capp::telemetry

#endif  // CAPP_TELEMETRY_SUMMARY_H_
