#include "telemetry/instruments.h"

#include "telemetry/registry.h"

namespace capp::telemetry::metrics {
namespace {

Counter& C(const char* name, const char* help) {
  return MetricsRegistry::Global().GetCounter(name, help);
}

Gauge& G(const char* name, const char* help) {
  return MetricsRegistry::Global().GetGauge(name, help);
}

Histogram& Hs(const char* name, const char* help) {
  return MetricsRegistry::Global().GetHistogram(
      name, HistogramUnit::kNanoseconds, help);
}

Histogram& Hb(const char* name, const char* help) {
  return MetricsRegistry::Global().GetHistogram(name, HistogramUnit::kBytes,
                                                help);
}

}  // namespace

Histogram& FleetChunkSeconds() {
  static Histogram& h = Hs("capp_fleet_chunk_seconds",
                           "Perturb+publish wall time per fleet chunk");
  return h;
}

Counter& TransportPushStallsTotal() {
  static Counter& c = C("capp_transport_push_stalls_total",
                        "Producer pushes that blocked on a full queue");
  return c;
}

Counter& TransportPopWaitsTotal() {
  static Counter& c = C("capp_transport_pop_waits_total",
                        "Consumer pops that blocked on an empty queue");
  return c;
}

Histogram& TransportPushStallSeconds() {
  static Histogram& h = Hs("capp_transport_push_stall_seconds",
                           "Time producers spent blocked on a full queue");
  return h;
}

Histogram& TransportPopWaitSeconds() {
  static Histogram& h = Hs("capp_transport_pop_wait_seconds",
                           "Time consumers spent blocked on an empty queue");
  return h;
}

Gauge& TransportQueueDepth() {
  static Gauge& g = G("capp_transport_queue_depth",
                      "Frames currently enqueued across transport queues");
  return g;
}

Histogram& TransportEncodeSeconds() {
  static Histogram& h = Hs("capp_transport_encode_seconds",
                           "Wire-format encode time per user run (sampled)");
  return h;
}

Counter& SocketWriteChunksTotal() {
  static Counter& c = C("capp_socket_write_chunks_total",
                        "Length-prefixed chunks written to the socket");
  return c;
}

Counter& SocketWriteBytesTotal() {
  static Counter& c = C("capp_socket_write_bytes_total",
                        "Bytes written to the socket (incl. length prefix)");
  return c;
}

Histogram& SocketWriteChunkBytes() {
  static Histogram& h = Hb("capp_socket_write_chunk_bytes",
                           "Payload size of each chunk written");
  return h;
}

Counter& SocketReadChunksTotal() {
  static Counter& c = C("capp_socket_read_chunks_total",
                        "Length-prefixed chunks read from the socket");
  return c;
}

Counter& SocketReadBytesTotal() {
  static Counter& c = C("capp_socket_read_bytes_total",
                        "Bytes read from the socket (incl. length prefix)");
  return c;
}

Histogram& SocketReadChunkBytes() {
  static Histogram& h = Hb("capp_socket_read_chunk_bytes",
                           "Payload size of each chunk read");
  return h;
}

Gauge& SocketOpenConnections() {
  static Gauge& g = G("capp_socket_open_connections",
                      "Fleet connections currently being served");
  return g;
}

Counter& IngestRunsTotal() {
  static Counter& c = C("capp_ingest_runs_total",
                        "User runs ingested by the sharded collector");
  return c;
}

Counter& IngestReportsTotal() {
  static Counter& c = C("capp_ingest_reports_total",
                        "Per-slot reports ingested by the sharded collector");
  return c;
}

Histogram& IngestRunSeconds() {
  static Histogram& h = Hs("capp_ingest_run_seconds",
                           "Collector ingest time per user run (sampled)");
  return h;
}

Counter& SeqlockReadRetriesTotal() {
  static Counter& c = C("capp_seqlock_read_retries_total",
                        "Owned-shard aggregate reads retried mid-write");
  return c;
}

Gauge& CollectorDims() {
  static Gauge& g = G("capp_collector_dims",
                      "Attributes per report of the newest collector");
  return g;
}

Counter& IngestDimRowsTotal() {
  static Counter& c = C("capp_ingest_dim_rows_total",
                        "Per-attribute slot rows ingested through the "
                        "dims-aware (d >= 2) collector path");
  return c;
}

Counter& WalAppendsTotal() {
  static Counter& c = C("capp_wal_appends_total", "Frames appended to the WAL");
  return c;
}

Counter& WalAppendedBytesTotal() {
  static Counter& c = C("capp_wal_appended_bytes_total",
                        "Payload bytes appended to the WAL");
  return c;
}

Counter& WalFsyncsTotal() {
  static Counter& c = C("capp_wal_fsyncs_total", "WAL fdatasync calls");
  return c;
}

Counter& WalRotationsTotal() {
  static Counter& c = C("capp_wal_rotations_total", "WAL segment rotations");
  return c;
}

Counter& WalCheckpointsTotal() {
  static Counter& c = C("capp_wal_checkpoints_total", "WAL checkpoints taken");
  return c;
}

Histogram& WalAppendSeconds() {
  static Histogram& h = Hs("capp_wal_append_seconds",
                           "WAL append time per frame (sampled)");
  return h;
}

Histogram& WalFsyncSeconds() {
  static Histogram& h = Hs("capp_wal_fsync_seconds",
                           "WAL fdatasync latency");
  return h;
}

Histogram& WalRotateSeconds() {
  static Histogram& h = Hs("capp_wal_rotate_seconds",
                           "WAL segment rotation latency");
  return h;
}

Histogram& WalCheckpointSeconds() {
  static Histogram& h = Hs("capp_wal_checkpoint_seconds",
                           "WAL checkpoint latency (quiesce + write + swap)");
  return h;
}

Counter& AnalyticsWindowsTotal() {
  static Counter& c = C("capp_analytics_windows_total",
                        "Sliding windows analyzed");
  return c;
}

Histogram& AnalyticsWindowSeconds() {
  static Histogram& h = Hs("capp_analytics_window_seconds",
                           "Compute time per analytics window");
  return h;
}

}  // namespace capp::telemetry::metrics
