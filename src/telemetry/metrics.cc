#include "telemetry/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define CAPP_TELEMETRY_HAVE_RDTSC 1
#endif

namespace capp::telemetry {
namespace {

// Measures TSC frequency against steady_clock over a short window. A
// plausible modern TSC runs 0.5-6 GHz; anything outside that (or a
// non-monotone reading, e.g. an exotic VM) falls back to steady_clock.
ClockInfo Calibrate() {
#ifdef CAPP_TELEMETRY_HAVE_RDTSC
  const uint64_t ns0 = SteadyNowNanos();
  const uint64_t tsc0 = __rdtsc();
  // Busy-wait ~2ms: long enough to swamp the two clock reads, short enough
  // that eager calibration at Configure() time is unnoticeable.
  while (SteadyNowNanos() - ns0 < 2'000'000) {
  }
  const uint64_t ns1 = SteadyNowNanos();
  const uint64_t tsc1 = __rdtsc();
  if (tsc1 > tsc0 && ns1 > ns0) {
    const double ns_per_tick = static_cast<double>(ns1 - ns0) /
                               static_cast<double>(tsc1 - tsc0);
    if (ns_per_tick > 1.0 / 6.0 && ns_per_tick < 2.0) {
      return ClockInfo{/*rdtsc=*/true, ns_per_tick};
    }
  }
#endif
  return ClockInfo{/*rdtsc=*/false, /*ns_per_tick=*/1.0};
}

}  // namespace

const ClockInfo& Clock() {
  static const ClockInfo info = Calibrate();
  return info;
}

uint64_t NowTicks() {
#ifdef CAPP_TELEMETRY_HAVE_RDTSC
  if (Clock().rdtsc) return __rdtsc();
#endif
  return SteadyNowNanos();
}

void Configure(const TelemetryConfig& config) {
  internal::g_sample_every.store(config.sample_every > 0 ? config.sample_every
                                                         : 1,
                                 std::memory_order_relaxed);
  if (config.enabled) {
    // Pay the calibration sleep now, not inside the first timed sample.
    (void)Clock();
  }
  internal::g_enabled.store(config.enabled, std::memory_order_relaxed);
}

TelemetryConfig CurrentConfig() {
  TelemetryConfig config;
  config.enabled = Enabled();
  config.sample_every = SampleEvery();
  return config;
}

}  // namespace capp::telemetry
