#include "telemetry/metrics_socket.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace capp::telemetry {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// A scrape request fits in one line; anything longer is garbage.
constexpr size_t kMaxRequestBytes = 4096;

void WriteAllBestEffort(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    const ssize_t sent =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return;  // scrape client vanished; nothing to salvage
    }
    done += static_cast<size_t>(sent);
  }
}

}  // namespace

MetricsSocketServer::MetricsSocketServer(const MetricsRegistry* registry,
                                         std::string socket_path,
                                         int listen_fd)
    : registry_(registry),
      socket_path_(std::move(socket_path)),
      listen_fd_(listen_fd) {}

Result<std::unique_ptr<MetricsSocketServer>> MetricsSocketServer::Create(
    const MetricsRegistry* registry, const std::string& socket_path) {
  if (registry == nullptr) {
    return Status::InvalidArgument("metrics server needs a registry");
  }
  sockaddr_un addr;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad metrics socket path: '" +
                                   socket_path + "'");
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return ErrnoStatus("socket");
  ::unlink(socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status failed = ErrnoStatus("bind " + socket_path);
    ::close(listen_fd);
    return failed;
  }
  if (::listen(listen_fd, 16) != 0) {
    Status failed = ErrnoStatus("listen on " + socket_path);
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    return failed;
  }
  std::unique_ptr<MetricsSocketServer> server(
      new MetricsSocketServer(registry, socket_path, listen_fd));
  server->server_ = std::thread([s = server.get()] { s->ServeMain(); });
  return server;
}

MetricsSocketServer::~MetricsSocketServer() { Stop(); }

void MetricsSocketServer::ServeMain() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNABORTED || errno == EPROTO) continue;
      // Stop() flipped the listener non-blocking (EAGAIN once the backlog
      // drains) or shut it down; any other error also ends the thread --
      // a dead scrape endpoint must never take ingest down with it.
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);  // the wake-up connection, or a late scraper
      continue;     // drain until accept reports an empty backlog
    }
    ServeConnection(fd);
  }
}

void MetricsSocketServer::ServeConnection(int fd) {
  // Bound a stalled client: scrapes are one short line, so two seconds
  // of silence means the peer is gone or not a scraper.
  struct timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[512];
  while (request.find('\n') == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;  // EOF or timeout: serve whatever arrived
    }
    request.append(buf, static_cast<size_t>(got));
  }
  const size_t eol = request.find_first_of("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);

  if (line.rfind("GET ", 0) == 0 || line == "metrics") {
    const std::string body = registry_->RenderPrometheus();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n";
    response += body;
    WriteAllBestEffort(fd, response);
  } else if (line == "stats") {
    WriteAllBestEffort(fd, registry_->RenderJson() + "\n");
  } else {
    WriteAllBestEffort(fd, "ERR unknown verb (want GET /metrics, metrics, "
                           "or stats)\n");
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void MetricsSocketServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  // Nudge the thread out of a blocked accept with a wake-up connection;
  // fall back to shutdown() if connect fails (backlog full, path raced).
  bool woke = false;
  const int wake = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (wake >= 0) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
    woke = ::connect(wake, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0;
    ::close(wake);
  }
  if (!woke) ::shutdown(listen_fd_, SHUT_RDWR);
  if (server_.joinable()) server_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

}  // namespace capp::telemetry
