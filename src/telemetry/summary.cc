#include "telemetry/summary.h"

#include <cstdarg>
#include <cstdio>

namespace capp::telemetry {
namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

unsigned long long U(uint64_t v) { return static_cast<unsigned long long>(v); }

}  // namespace

std::string RenderSummary(const RunSummary& summary) {
  std::string out;
  if (summary.transport != nullptr) {
    const TransportStats& t = *summary.transport;
    Appendf(&out,
            "transport: %llu frames carried %llu runs (%llu reports), "
            "%llu push stalls, %llu pop waits",
            U(t.frames), U(t.runs), U(t.reports), U(t.push_stalls),
            U(t.pop_waits));
    if (t.wire_bytes > 0) {
      Appendf(&out, ", %.1f MB on the wire",
              static_cast<double>(t.wire_bytes) / 1048576.0);
    }
    if (t.connections > 0) {
      Appendf(&out, ", %llu socket connection(s)", U(t.connections));
    }
    if (t.decode_failures > 0) {
      Appendf(&out, ", %llu DECODE FAILURE(S)", U(t.decode_failures));
    }
    if (t.stream_errors > 0) {
      Appendf(&out, ", %llu STREAM ERROR(S)", U(t.stream_errors));
    }
    out += "\n";
    for (size_t c = 0; c < t.consumer_runs.size(); ++c) {
      Appendf(&out, "  consumer %zu: %llu runs (%.0f%%)\n", c,
              U(t.consumer_runs[c]),
              t.runs > 0 ? 100.0 * static_cast<double>(t.consumer_runs[c]) /
                               static_cast<double>(t.runs)
                         : 0.0);
    }
  }
  if (summary.owned_shards) {
    Appendf(&out, "owned-shard ingest: %llu seqlock read retrie(s)\n",
            U(summary.seqlock_read_retries));
  }
  if (summary.wal != nullptr) {
    const WalStats& w = *summary.wal;
    Appendf(&out,
            "wal: %llu frame(s) appended (%.1f MB), %llu fsync(s), "
            "%llu checkpoint(s), %llu resent run(s) deduped\n",
            U(w.frames_appended),
            static_cast<double>(w.bytes_appended) / 1048576.0, U(w.fsyncs),
            U(w.checkpoints), U(w.runs_deduped));
  }
  return out;
}

}  // namespace capp::telemetry
