// Process-wide metric registry: names -> Counter/Gauge/Histogram, with
// Prometheus-text and JSON snapshot exporters.
//
// Registration (GetCounter etc.) takes a mutex; the returned reference is
// stable for the registry's lifetime, so instrumented sites resolve their
// metric once (function-local static) and write lock-free forever after.
// Exporters take the same mutex only to walk the name map -- the metric
// values themselves are read with relaxed atomics, so rendering runs
// concurrently with hot writers.
#ifndef CAPP_TELEMETRY_REGISTRY_H_
#define CAPP_TELEMETRY_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/status.h"
#include "telemetry/metrics.h"

namespace capp::telemetry {

// Unit of the raw uint64 values a histogram records; exporters scale
// nanosecond histograms to seconds (the Prometheus base unit).
enum class HistogramUnit { kNanoseconds, kBytes };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every built-in instrument lives in.
  static MetricsRegistry& Global();

  // Find-or-create by name. Aborts (CAPP_CHECK) if the name is already
  // registered as a different kind or unit -- that is a programming error.
  Counter& GetCounter(std::string_view name, std::string_view help = {});
  Gauge& GetGauge(std::string_view name, std::string_view help = {});
  Histogram& GetHistogram(std::string_view name, HistogramUnit unit,
                          std::string_view help = {});

  // Point reads for periodic one-line summaries; 0 if the name is absent
  // or not of the requested kind.
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;

  // Prometheus text exposition format (# HELP / # TYPE / samples), names
  // in sorted order, histograms as cumulative `_bucket{le=...}` series up
  // to the highest occupied bucket plus `+Inf`, `_sum`, `_count`.
  std::string RenderPrometheus() const;

  // The same snapshot as one JSON object:
  //   {"clock": {...}, "counters": {...}, "gauges": {...},
  //    "histograms": {name: {unit, count, sum, buckets: [{le, count}...]}}}
  std::string RenderJson() const;

  Status WriteJsonFile(const std::string& path) const;

  // Zeroes every registered metric (objects and references stay valid).
  // For bench/test isolation between runs in one process.
  void Reset();

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram };
    Kind kind;
    std::string help;
    HistogramUnit unit = HistogramUnit::kNanoseconds;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  // Sorted map: exporters emit deterministic, diffable output.
  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace capp::telemetry

#endif  // CAPP_TELEMETRY_REGISTRY_H_
