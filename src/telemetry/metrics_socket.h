// Live metrics scrape endpoint: a side unix-domain socket, separate from
// the ingest socket, answering two verbs per connection:
//
//   "GET /metrics..."  -> a minimal HTTP/1.0 200 response whose body is
//                         the registry's Prometheus text exposition
//                         (curl --unix-socket PATH http://x/metrics works)
//   "stats"            -> the registry's JSON snapshot, one line
//
// Scrapes are served one at a time on the server's own thread; they only
// read relaxed atomics, so a scrape never blocks ingest. A stuck client
// is bounded by a per-connection receive timeout.
#ifndef CAPP_TELEMETRY_METRICS_SOCKET_H_
#define CAPP_TELEMETRY_METRICS_SOCKET_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "core/status.h"
#include "telemetry/registry.h"

namespace capp::telemetry {

class MetricsSocketServer {
 public:
  /// Binds `socket_path` (unlinking any stale file) and starts the serve
  /// thread. `registry` must outlive the server.
  static Result<std::unique_ptr<MetricsSocketServer>> Create(
      const MetricsRegistry* registry, const std::string& socket_path);

  ~MetricsSocketServer();

  MetricsSocketServer(const MetricsSocketServer&) = delete;
  MetricsSocketServer& operator=(const MetricsSocketServer&) = delete;

  /// Stops the serve thread, closes the listener, and removes the socket
  /// file. Idempotent; the destructor calls it.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  MetricsSocketServer(const MetricsRegistry* registry,
                      std::string socket_path, int listen_fd);

  void ServeMain();
  void ServeConnection(int fd);

  const MetricsRegistry* registry_;
  std::string socket_path_;
  int listen_fd_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::thread server_;
};

}  // namespace capp::telemetry

#endif  // CAPP_TELEMETRY_METRICS_SOCKET_H_
