// Lock-free metric primitives: striped counters/gauges aggregated on read,
// power-of-2 log-bucketed latency histograms, and a calibrated monotonic
// clock (rdtsc where available, steady_clock otherwise).
//
// Design constraints, in order:
//   1. A disabled process pays nothing beyond one relaxed atomic load per
//      instrumented site (`Enabled()`); timers and registry mirrors are
//      behind that check.
//   2. Writers never take a lock and never share a cache line with other
//      writer threads in the common case (16 stripes, 64-byte aligned).
//   3. Reads (registry snapshots, exporters) are wait-free sums over the
//      stripes and may run concurrently with hot writers; values are
//      monotone per stripe so a racing read only under-counts in-flight
//      increments, never tears.
//
// Latency values are recorded in nanoseconds. Expensive sites (per-run
// ingest, per-frame encode, WAL append) are additionally sampled: only
// every `sample_every()`-th event per thread is timed, so the rdtsc pair
// amortizes to noise at the default coarse rate.
#ifndef CAPP_TELEMETRY_METRICS_H_
#define CAPP_TELEMETRY_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace capp::telemetry {

// ---------------------------------------------------------------------------
// Global gates.
//
// `enabled` is the master switch every instrumented site checks first;
// `sample_every` thins the timed (histogram) sites per thread. Both are
// process-wide: metrics describe the process, not one engine instance.
// ---------------------------------------------------------------------------

struct TelemetryConfig {
  bool enabled = false;
  // A thread times 1 out of every `sample_every` sampled events. 64 keeps
  // the rdtsc pair under ~0.1% of a ~100-report run at 32M reports/s.
  uint32_t sample_every = 64;
};

namespace internal {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<uint32_t> g_sample_every{64};
inline std::atomic<size_t> g_next_stripe{0};
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

inline uint32_t SampleEvery() {
  return internal::g_sample_every.load(std::memory_order_relaxed);
}

// Applies the config process-wide. Enabling eagerly calibrates the clock so
// the first timed sample does not pay the calibration sleep.
void Configure(const TelemetryConfig& config);

TelemetryConfig CurrentConfig();

// True for 1 out of every SampleEvery() calls on this thread. Call only
// when Enabled() -- the countdown should not advance for free.
inline bool ShouldSample() {
  thread_local uint32_t countdown = 1;
  if (--countdown != 0) return false;
  countdown = SampleEvery() > 0 ? SampleEvery() : 1;
  return true;
}

// ---------------------------------------------------------------------------
// Clock: rdtsc with one-time calibration against steady_clock, falling back
// to steady_clock nanoseconds where rdtsc is unavailable or implausible.
// ---------------------------------------------------------------------------

struct ClockInfo {
  bool rdtsc = false;          // ticks are TSC cycles, else already ns
  double ns_per_tick = 1.0;
};

// Calibrates on first use (~2ms busy-wait against steady_clock).
const ClockInfo& Clock();

inline uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowTicks();

inline uint64_t TicksToNanos(uint64_t ticks) {
  const ClockInfo& clock = Clock();
  if (!clock.rdtsc) return ticks;
  return static_cast<uint64_t>(static_cast<double>(ticks) *
                               clock.ns_per_tick);
}

// ---------------------------------------------------------------------------
// Counter / Gauge: per-thread striped cells, aggregated on read.
// ---------------------------------------------------------------------------

// Stripe index for the calling thread: threads round-robin onto kStripes
// cache-line-sized cells, so concurrent writers rarely contend and never
// false-share with the stripe-assignment counter.
inline size_t ThreadStripe(size_t stripes) {
  thread_local const size_t assigned =
      internal::g_next_stripe.fetch_add(1, std::memory_order_relaxed);
  return assigned & (stripes - 1);
}

// Monotone event counter. Add() is one relaxed fetch_add on a thread-local
// stripe; Value() sums the stripes (may under-count in-flight adds, never
// tears). Not movable: instrumented owners hold it by unique_ptr or value
// for the object's lifetime.
class Counter {
 public:
  static constexpr size_t kStripes = 16;
  static_assert((kStripes & (kStripes - 1)) == 0, "stripes must be pow2");

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    cells_[ThreadStripe(kStripes)].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kStripes];
};

// Signed up/down gauge (queue depth, open connections). Same striping as
// Counter; Value() is the signed sum of the stripes.
class Gauge {
 public:
  static constexpr size_t kStripes = 16;

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t delta) {
    cells_[ThreadStripe(kStripes)].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
  }

  void Set(int64_t value) {
    // Collapse onto stripe 0 and zero the rest; callers that Set() are
    // single-threaded owners (e.g. a sampler publishing a level).
    cells_[0].value.store(value, std::memory_order_relaxed);
    for (size_t i = 1; i < kStripes; ++i) {
      cells_[i].value.store(0, std::memory_order_relaxed);
    }
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() { Set(0); }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };
  Cell cells_[kStripes];
};

// ---------------------------------------------------------------------------
// Histogram: fixed-layout log-bucketed (HDR-style at 1 bucket/octave).
// ---------------------------------------------------------------------------

// Bucket b holds values whose bit_width is b: bucket 0 is exactly {0},
// bucket b in [1, 62] covers [2^(b-1), 2^b - 1], bucket 63 is the tail.
// Snapshots are plain arrays and merge by element-wise addition, so shard
// or window merges are exact.
struct HistogramSnapshot {
  static constexpr size_t kBuckets = 64;

  uint64_t buckets[kBuckets] = {};
  uint64_t sum = 0;

  uint64_t count() const {
    uint64_t total = 0;
    for (uint64_t bucket : buckets) total += bucket;
    return total;
  }

  void Merge(const HistogramSnapshot& other) {
    for (size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
    sum += other.sum;
  }
};

class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static constexpr size_t BucketFor(uint64_t value) {
    if (value == 0) return 0;
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  // Inclusive upper bound of bucket b (the Prometheus `le` boundary).
  static constexpr uint64_t BucketUpperBound(size_t bucket) {
    if (bucket >= kBuckets - 1) return UINT64_MAX;
    return (uint64_t{1} << bucket) - 1;
  }

  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
  }

  void Reset() {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// Times a scope and records the elapsed nanoseconds into a histogram.
// Construct with nullptr (or default) to make the whole thing a no-op;
// the idiom at sampled sites is:
//
//   telemetry::ScopedTimer timer;
//   if (telemetry::Enabled() && telemetry::ShouldSample()) {
//     timer.Arm(&telemetry::metrics::IngestRunNanos());
//   }
class ScopedTimer {
 public:
  ScopedTimer() = default;
  explicit ScopedTimer(Histogram* histogram) { Arm(histogram); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void Arm(Histogram* histogram) {
    histogram_ = histogram;
    if (histogram_ != nullptr) start_ = NowTicks();
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(TicksToNanos(NowTicks() - start_));
    }
  }

 private:
  Histogram* histogram_ = nullptr;
  uint64_t start_ = 0;
};

}  // namespace capp::telemetry

#endif  // CAPP_TELEMETRY_METRICS_H_
