// The process-wide instrument set: one accessor per built-in metric,
// resolving lazily into MetricsRegistry::Global(). Each accessor is a
// function-local static reference, so an instrumented site pays the
// registry mutex once per process and a plain pointer read after that.
//
// Naming follows Prometheus conventions: `capp_` prefix, `_total` on
// counters, `_seconds`/`_bytes` unit suffix on histograms. Keep names in
// sync with the table in src/engine/README.md ("Telemetry") and the
// expectations in tools/scrape_metrics.py / CI.
#ifndef CAPP_TELEMETRY_INSTRUMENTS_H_
#define CAPP_TELEMETRY_INSTRUMENTS_H_

#include "telemetry/metrics.h"

namespace capp::telemetry::metrics {

// --- fleet (producer side) -------------------------------------------------
// Wall time to perturb + publish one fleet chunk (a few thousand users).
Histogram& FleetChunkSeconds();

// --- transport queue -------------------------------------------------------
Counter& TransportPushStallsTotal();
Counter& TransportPopWaitsTotal();
Histogram& TransportPushStallSeconds();  // time blocked in a full-queue wait
Histogram& TransportPopWaitSeconds();    // time blocked in an empty-queue wait
Gauge& TransportQueueDepth();            // frames currently queued, all queues
Histogram& TransportEncodeSeconds();     // wire-format encode of one run

// --- socket ----------------------------------------------------------------
Counter& SocketWriteChunksTotal();
Counter& SocketWriteBytesTotal();
Histogram& SocketWriteChunkBytes();
Counter& SocketReadChunksTotal();
Counter& SocketReadBytesTotal();
Histogram& SocketReadChunkBytes();
Gauge& SocketOpenConnections();

// --- collector -------------------------------------------------------------
Counter& IngestRunsTotal();
Counter& IngestReportsTotal();
Histogram& IngestRunSeconds();     // one user's run through IngestUserRun
Counter& SeqlockReadRetriesTotal();
Gauge& CollectorDims();            // attributes per report (last collector)
Counter& IngestDimRowsTotal();     // per-attribute rows via the d-dim path

// --- WAL -------------------------------------------------------------------
Counter& WalAppendsTotal();
Counter& WalAppendedBytesTotal();
Counter& WalFsyncsTotal();
Counter& WalRotationsTotal();
Counter& WalCheckpointsTotal();
Histogram& WalAppendSeconds();
Histogram& WalFsyncSeconds();
Histogram& WalRotateSeconds();
Histogram& WalCheckpointSeconds();

// --- analytics -------------------------------------------------------------
Counter& AnalyticsWindowsTotal();
Histogram& AnalyticsWindowSeconds();

}  // namespace capp::telemetry::metrics

#endif  // CAPP_TELEMETRY_INSTRUMENTS_H_
