// Scenario configuration and result counters for the stream-publication
// engine. An EngineConfig describes one simulated deployment -- which
// algorithm the fleet's devices run, at what privacy level, how many users
// and slots, and how the simulator should execute it -- and an EngineStats
// records what happened (throughput, accuracy, and the determinism digest).
#ifndef CAPP_ENGINE_ENGINE_CONFIG_H_
#define CAPP_ENGINE_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "algorithms/factory.h"
#include "core/status.h"
#include "multidim/multidim_perturber.h"
#include "storage/wal.h"
#include "transport/transport.h"

namespace capp {

/// Synthetic per-user workload families the fleet can generate. Every
/// family derives each user's stream purely from that user's own RNG, which
/// is what makes fleet runs independent of thread scheduling.
enum class SignalKind {
  kConstant,   ///< Per-user constant level drawn uniformly from [0.3, 0.7].
  kSinusoid,   ///< Shared daily sinusoid, per-user phase and noise.
  kAr1,        ///< AR(1) around 0.5 (phi = 0.9).
  kRandomWalk, ///< Reflected random walk in [0, 1].
  kPiecewise,  ///< Piecewise-constant on/off levels (device duty cycles).
};

/// Short display name of a signal kind ("constant", "sinusoid", ...).
std::string_view SignalKindName(SignalKind kind);

/// Parses a display name back into a SignalKind.
Result<SignalKind> ParseSignalKind(std::string_view name);

/// Collector-side streaming analytics tier: when enabled, the fleet's
/// collector maintains per-slot perturbed-value histograms (sized by
/// StreamingAnalyzer::CollectorHistogramOptions at the config's per-slot
/// budget epsilon/window) alongside its exact aggregates, so sliding-
/// window SW-EM distribution reconstruction, crowd means, and trend
/// detection run online -- no report matrix, works in aggregate-only
/// mode. Off by default: histogram maintenance costs a few percent of
/// ingest throughput (bench_analytics_throughput tracks it).
struct AnalyticsConfig {
  bool enabled = false;
  /// Resolution of the reconstructed input distribution over [0,1]; the
  /// collector histograms get 2x this many bins over the SW output range.
  int histogram_buckets = 32;
};

/// Collector durability tier (storage/durable_collector.h): when `dir`
/// is set, every ingested run is teed into a write-ahead log there
/// before the in-RAM collector, existing state under the directory is
/// recovered on Fleet::Create, and (optionally) checkpoints bound the
/// log's replay cost. Off by default -- the WAL costs throughput
/// (bench_durability_throughput tracks how much per fsync policy) and
/// simulation experiments rarely need to survive a crash.
struct DurabilityConfig {
  /// WAL directory; empty disables durability entirely.
  std::string dir;
  WalFsyncPolicy fsync_policy = WalFsyncPolicy::kPerFrames;
  /// kPerFrames: runs between fdatasyncs.
  size_t fsync_every_frames = 1024;
  /// kTimed: max milliseconds between fdatasyncs.
  int fsync_interval_ms = 50;
  /// Checkpoint + truncate the log every N runs; 0 = never. Requires
  /// aggregate-only mode (keep_streams = false): raw streams are not
  /// checkpointable.
  size_t checkpoint_every_runs = 0;

  bool enabled() const { return !dir.empty(); }
};

/// One simulated deployment scenario.
struct EngineConfig {
  /// Algorithm every device runs. Must support online operation.
  AlgorithmKind algorithm = AlgorithmKind::kCapp;
  /// w-event privacy level for every device.
  double epsilon = 1.0;
  int window = 10;

  /// Fleet shape.
  size_t num_users = 1000;
  size_t num_slots = 100;
  SignalKind signal = SignalKind::kSinusoid;

  /// Attributes per report (>= 1). With dims > 1 every device publishes a
  /// d-vector per slot: the fleet synthesizes d correlated signals per
  /// user, perturbs them through `multidim_strategy` (epsilon is the
  /// *total* window budget across dimensions), ships them dim-major in
  /// 0xC6 wire frames, and the collector stores slot*dims interleaved
  /// cells. dims = 1 is bit-identical to the pre-multidim engine on every
  /// path: same draws, same 0xC5 bytes, same digests and fingerprints.
  size_t dims = 1;
  /// How a d-dimensional stream splits its budget (ignored when dims=1).
  MultidimStrategy multidim_strategy = MultidimStrategy::kBudgetSplit;

  /// Execution. num_threads 0 means one thread per hardware thread.
  /// chunk_size is the number of users per work unit; chunk boundaries are
  /// fixed by this value alone, so stats stay identical across thread
  /// counts.
  int num_threads = 1;
  size_t chunk_size = 4096;
  uint64_t seed = 1;

  /// Collector storage. keep_streams = true retains every raw report for
  /// per-user queries; false keeps only streaming per-slot aggregates
  /// (required at million-user scale).
  size_t num_shards = 16;
  bool keep_streams = false;

  /// Collector-side SMA window for published streams; 0 uses the
  /// algorithm's own recommendation (3 for the PP family, 1 for baselines).
  int smoothing_window = 0;

  /// How reports travel from the fleet's workers to the collector:
  /// kDirect calls ShardedCollector::IngestUserRun in place; kQueue and
  /// kQueueFramed route every run through the transport hub's bounded
  /// MPSC ring (and, for kQueueFramed, the binary wire codec) drained by
  /// transport.num_consumers threads; kSocket streams the wire frames
  /// through a unix-domain socket to a collector-side acceptor (an
  /// in-process loopback server, or the external tools/collector_server
  /// when transport.socket_path is set). transport.shard_affinity routes
  /// each run to the consumer owning its shard group. Results are
  /// bit-identical across all kinds, thread mixes, and affinity settings.
  TransportOptions transport;

  /// Streaming collector-side analytics (per-slot value histograms).
  AnalyticsConfig analytics = {};

  /// Collector durability (WAL + recovery + checkpoints). Incompatible
  /// with an external-socket transport: the reports then live in the
  /// collector_server process, which owns its own WAL via --wal-dir.
  DurabilityConfig durability = {};
};

/// Fingerprint of the config fields that determine what a collector's
/// aggregate state means: algorithm, budget, fleet shape, signal, seed,
/// shard count, stream retention, and the analytics histogram geometry.
/// Stamped into every WAL segment and checkpoint so recovery refuses to
/// merge state across incompatible configurations (and so a duplicate
/// replay of a foreign log is caught). Transport and durability knobs
/// are deliberately excluded: they may change between restarts without
/// changing what the aggregates mean.
uint64_t EngineConfigFingerprint(const EngineConfig& config);

/// Fingerprint of the config surface a fleet and a collector must agree
/// on before streaming reports at each other: privacy budget (epsilon,
/// window) and -- for multi-dimensional streams -- dims and the budget
/// strategy. Stamped into the socket transport's connection handshake
/// (transport/handshake.h) by Fleet::Create and by collector_server, so
/// a mismatched pair is refused loudly before any data flows. Narrower
/// than EngineConfigFingerprint on purpose: fleet shape, signal, and
/// seed may differ across the clients of one collector.
uint64_t StreamHandshakeFingerprint(double epsilon, int window, size_t dims,
                                    MultidimStrategy strategy);

/// Validates an EngineConfig (delegates perturber knobs to
/// ValidatePerturberOptions and checks the engine-specific fields).
Status ValidateEngineConfig(const EngineConfig& config);

/// Counters from one Fleet run.
struct EngineStats {
  size_t users = 0;
  size_t slots = 0;
  size_t reports = 0;  ///< Total reports delivered to the collector.
  size_t threads = 0;  ///< Worker threads actually used.
  size_t chunks = 0;   ///< Work units the population was split into.

  double elapsed_seconds = 0.0;
  double reports_per_sec = 0.0;

  /// Attributes per report (EngineConfig::dims).
  size_t dims = 1;

  /// Mean over slots of (published population mean - true population
  /// mean)^2, the engine-level analogue of the paper's per-slot MSE.
  /// With dims > 1, the mean runs over all dims * slots (dimension,
  /// slot) pairs.
  double mean_slot_mse = 0.0;
  /// Mean over slots of |published population mean - true population mean|.
  double mean_abs_error = 0.0;
  /// Per-dimension splits of the two errors above, length `dims` (for
  /// d = 1, one-element vectors equal to the totals).
  std::vector<double> per_dim_mse;
  std::vector<double> per_dim_mae;

  /// Per-slot series behind the error statistics: the true population mean
  /// and the published (smoothed) estimate, both of length dims * slots,
  /// dim-major (dimension k's series at [k * slots, (k+1) * slots)).
  std::vector<double> true_slot_means;
  std::vector<double> published_slot_means;

  /// Order-independent digest of every user's published (smoothed) stream:
  /// XOR over users of UserStreamDigest(user id, stream) -- the chunk-level
  /// wyhash-style hash in core/stream_digest.h (digest v2). Bit-identical
  /// across runs with the same config and seed regardless of thread count
  /// -- the engine's determinism contract in one number.
  uint64_t stream_digest = 0;

  /// Transport counters (zero under TransportKind::kDirect, where no
  /// queue exists).
  TransportStats transport;

  /// Reports clamped by the collector's fixed-point aggregates (magnitude
  /// beyond 2^16). Always zero on a successful run: Fleet::Run fails with
  /// an Internal error instead of returning silently-wrong aggregates.
  uint64_t aggregate_saturations = 0;

  /// True when transport.owned_shards put the collector in single-writer
  /// (seqlock) mode for this run.
  bool owned_shards = false;
  /// Seqlock snapshot retries observed by the collector's aggregate
  /// readers during the run (owned_shards only; always 0 in mutex mode).
  uint64_t seqlock_read_retries = 0;

  /// Durability counters (all zero when DurabilityConfig is off):
  /// appends, fsyncs, checkpoints, deduped resends, and the recovery
  /// summary from Fleet::Create's replay of a pre-existing WAL.
  WalStats wal;

  /// One-line human-readable summary.
  std::string ToString() const;
};

}  // namespace capp

#endif  // CAPP_ENGINE_ENGINE_CONFIG_H_
