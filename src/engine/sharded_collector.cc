#include "engine/sharded_collector.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <new>
#include <thread>
#include <type_traits>

#include "core/check.h"
#include "core/math_utils.h"
#include "core/rng.h"
#include "stream/gap_fill.h"
#include "telemetry/instruments.h"

namespace capp {
namespace {

constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

// Saturating histogram-bin increment (see Shard::histogram): a bin
// pinned at 2^32 - 1 stops counting and reports through the shard's
// saturated_reports channel instead of silently wrapping.
inline void BumpBin(uint32_t& bin, uint64_t& saturated_reports) {
  if (bin == std::numeric_limits<uint32_t>::max()) {
    ++saturated_reports;
  } else {
    ++bin;
  }
}

// Reads values[slot][dense] treating short rows as missing.
double RawValueAt(const std::vector<std::vector<double>>& values, size_t slot,
                  uint32_t dense) {
  if (slot >= values.size()) return kMissing;
  const std::vector<double>& row = values[slot];
  return dense < row.size() ? row[dense] : kMissing;
}

// Single-writer storage keeps each SlotAggregate as its five Packed
// words in a flat atomic array; these convert between the two forms.
// All accesses are relaxed: the seqlock's sequence counter and fences
// provide the ordering, the atomics only keep the racing word accesses
// defined.
constexpr size_t kPackedWords = 5;

inline SlotAggregate LoadPackedSlot(const std::atomic<uint64_t>* words) {
  SlotAggregate::Packed packed;
  packed.count = words[0].load(std::memory_order_relaxed);
  packed.sum_hi = words[1].load(std::memory_order_relaxed);
  packed.sum_lo = words[2].load(std::memory_order_relaxed);
  packed.sum_sq_hi = words[3].load(std::memory_order_relaxed);
  packed.sum_sq_lo = words[4].load(std::memory_order_relaxed);
  return SlotAggregate::FromPacked(packed);
}

inline void StorePackedSlot(std::atomic<uint64_t>* words,
                            const SlotAggregate& aggregate) {
  const SlotAggregate::Packed packed = aggregate.ToPacked();
  words[0].store(packed.count, std::memory_order_relaxed);
  words[1].store(packed.sum_hi, std::memory_order_relaxed);
  words[2].store(packed.sum_lo, std::memory_order_relaxed);
  words[3].store(packed.sum_sq_hi, std::memory_order_relaxed);
  words[4].store(packed.sum_sq_lo, std::memory_order_relaxed);
}

// Allocates a zero-initialized, 64-byte-aligned array of atomics for the
// owned (seqlock) storage. make_unique's allocation is only 16-byte
// aligned, so the packed 5-word (40-byte) aggregate slots started at an
// arbitrary cache-line offset: which line a given slot's words straddle
// depended on where the allocator happened to place the array, and the
// first slots of a hot run could cost an extra straddled line. Aligning
// the base to the line size makes slot-to-line mapping a pure function
// of the slot index (slots t and t+1 share a line on a fixed 8-slot /
// 5-line cadence) and lets the run walk stream through whole lines.
// Measured with bench_transport_throughput's queue_owned row (200k
// users x 50 slots, best of 5): 27.0M -> 31.2M reports/s, while the
// mutex-mode d=1 bench_engine_throughput row stayed within noise of its
// baseline (0.98x best-of-5, above the 0.95x floor).
template <typename T>
AlignedAtomicArray<T> MakeAlignedZeroed(size_t n) {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedFree releases without running destructors");
  T* p = static_cast<T*>(::operator new(n * sizeof(T),
                                        std::align_val_t{64}));
  for (size_t i = 0; i < n; ++i) new (p + i) T();
  return AlignedAtomicArray<T>(p);
}

// Rebuilds an aggregate from five already-snapshotted plain words.
inline SlotAggregate UnpackSnapshotSlot(const uint64_t* words) {
  SlotAggregate::Packed packed;
  packed.count = words[0];
  packed.sum_hi = words[1];
  packed.sum_lo = words[2];
  packed.sum_sq_hi = words[3];
  packed.sum_sq_lo = words[4];
  return SlotAggregate::FromPacked(packed);
}

}  // namespace

Result<ShardedCollector> ShardedCollector::Create(
    ShardedCollectorOptions options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.dims < 1) {
    return Status::InvalidArgument("dims must be >= 1");
  }
  if (options.single_writer && options.keep_streams) {
    // Raw per-user streams are owner-private dense arrays; serving them
    // to concurrent readers would need the very mutex single-writer
    // mode exists to elide.
    return Status::InvalidArgument(
        "single_writer collectors are aggregate-only; set keep_streams "
        "= false");
  }
  if (options.histogram.enabled) {
    if (options.histogram.num_bins < 2) {
      return Status::InvalidArgument("histogram.num_bins must be >= 2");
    }
    if (!std::isfinite(options.histogram.lo) ||
        !std::isfinite(options.histogram.hi) ||
        options.histogram.lo >= options.histogram.hi) {
      return Status::InvalidArgument(
          "histogram range wants finite lo < hi");
    }
  }
  return ShardedCollector(options);
}

ShardedCollector::ShardedCollector(ShardedCollectorOptions options)
    : options_(options),
      seqlock_read_retries_(std::make_unique<telemetry::Counter>()) {
  if (telemetry::Enabled()) {
    telemetry::metrics::CollectorDims().Set(
        static_cast<int64_t>(options_.dims));
  }
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t ShardedCollector::ShardIndex(uint64_t user_id) const {
  // Hash rather than modulo directly: sequential fleet user ids would
  // otherwise stripe perfectly, which is fine for balance but makes shard
  // membership depend on the population layout instead of the id alone.
  return SplitMix64Mix(user_id) % shards_.size();
}

void ShardedCollector::GrowSlots(Shard& shard, size_t end_slot) {
  if (end_slot <= shard.slots.size()) return;
  shard.slots.resize(end_slot);
  if (options_.histogram.enabled) {
    shard.histogram.resize(end_slot * options_.histogram.row_size(), 0);
  }
}

void ShardedCollector::GrowOwnedSlots(Shard& shard, size_t end_slot) {
  // The mutex here excludes in-flight seqlock readers (they hold it for
  // their whole snapshot), so the swap below can never reallocate the
  // arrays out from under a racing copy. Only the owner grows, so
  // owned_slots / owned_capacity are stable outside the lock for it.
  std::lock_guard<std::mutex> lock(shard.mu);
  if (end_slot > shard.owned_capacity) {
    size_t capacity = std::max<size_t>(shard.owned_capacity * 2, 64);
    capacity = std::max(capacity, end_slot);
    // MakeAlignedZeroed value-initializes, so the new tail slots are zero
    // -- an empty SlotAggregate / empty bins, exactly like GrowSlots.
    auto packed =
        MakeAlignedZeroed<std::atomic<uint64_t>>(capacity * kPackedWords);
    for (size_t w = 0; w < shard.owned_slots * kPackedWords; ++w) {
      packed[w].store(shard.owned_packed[w].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    shard.owned_packed = std::move(packed);
    if (options_.histogram.enabled) {
      const size_t row_size = options_.histogram.row_size();
      auto bins =
          MakeAlignedZeroed<std::atomic<uint32_t>>(capacity * row_size);
      for (size_t b = 0; b < shard.owned_slots * row_size; ++b) {
        bins[b].store(
            shard.owned_histogram[b].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      }
      shard.owned_histogram = std::move(bins);
    }
    shard.owned_capacity = capacity;
  }
  shard.owned_slots = end_slot;
}

void ShardedCollector::IngestOwnedRun(Shard& shard, uint64_t user_id,
                                      size_t base_slot,
                                      std::span<const double> values,
                                      size_t first, size_t last) {
  // Owner-private bookkeeping: exactly one thread ever ingests into
  // this shard (the single_writer contract), so the user index and
  // dense arrays need no lock. Cross-thread per-user queries are
  // answered only from the owner or after quiescence (see the header).
  const auto [it, inserted] = shard.index.try_emplace(
      user_id, static_cast<uint32_t>(shard.last_slot.size()));
  const uint32_t dense = it->second;
  if (inserted) {
    shard.last_slot.push_back(static_cast<uint32_t>(base_slot + first));
    shard.reports_per_user.push_back(0);
    shard.owned_users.store(
        shard.owned_users.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  }
  shard.last_slot[dense] = std::max(
      shard.last_slot[dense], static_cast<uint32_t>(base_slot + last));
  const size_t end_slot = base_slot + last + 1;
  if (end_slot > shard.owned_slots) GrowOwnedSlots(shard, end_slot);

  // Seqlock write section: bump to odd, release-fence so the data
  // stores cannot be ordered before it, mutate, then publish with a
  // store-release back to even. Readers that overlap any of this see an
  // odd or moved sequence and retry.
  const uint64_t seq = shard.seq.load(std::memory_order_relaxed);
  shard.seq.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  size_t ingested = 0;
  uint64_t saturated = 0;
  std::atomic<uint64_t>* const slots_base =
      shard.owned_packed.get() + base_slot * kPackedWords;
  for (size_t i = first; i <= last; ++i) {
    if (!std::isfinite(values[i])) continue;
    std::atomic<uint64_t>* words = slots_base + i * kPackedWords;
    SlotAggregate aggregate = LoadPackedSlot(words);
    saturated += static_cast<uint64_t>(aggregate.Add(values[i]));
    StorePackedSlot(words, aggregate);
    ++ingested;
  }
  const SlotHistogramOptions& hist = options_.histogram;
  if (hist.enabled) {
    const size_t row_size = hist.row_size();
    std::atomic<uint32_t>* rows =
        shard.owned_histogram.get() + base_slot * row_size;
    for (size_t i = first; i <= last; ++i) {
      if (!std::isfinite(values[i])) continue;
      std::atomic<uint32_t>& bin =
          rows[i * row_size + hist.BinFor(values[i])];
      const uint32_t count = bin.load(std::memory_order_relaxed);
      if (count == std::numeric_limits<uint32_t>::max()) {
        ++saturated;  // same pinned-bin semantics as BumpBin
      } else {
        bin.store(count + 1, std::memory_order_relaxed);
      }
    }
  }
  shard.seq.store(seq + 2, std::memory_order_release);

  // Totals live outside the write section: they are monotonic counters
  // read relaxed, not part of the consistent-snapshot contract.
  shard.reports_per_user[dense] += static_cast<uint32_t>(ingested);
  shard.owned_reports.store(
      shard.owned_reports.load(std::memory_order_relaxed) + ingested,
      std::memory_order_relaxed);
  shard.owned_saturated.store(
      shard.owned_saturated.load(std::memory_order_relaxed) + saturated,
      std::memory_order_relaxed);
}

size_t ShardedCollector::SnapshotOwned(const Shard& shard,
                                       std::vector<uint64_t>& packed,
                                       std::vector<uint32_t>* hist) const {
  // Seqlock read: copy the words, then retry if the owner was inside a
  // write section (odd sequence) or wrote during the copy (sequence
  // moved). Holding the mutex blocks only capacity growth -- never the
  // ingest fast path -- so readers cannot perturb the throughput win.
  std::lock_guard<std::mutex> lock(shard.mu);
  const size_t slots = shard.owned_slots;
  const size_t words = slots * kPackedWords;
  const size_t bins = (hist != nullptr && options_.histogram.enabled)
                          ? slots * options_.histogram.row_size()
                          : 0;
  packed.resize(words);
  if (hist != nullptr) hist->resize(bins);
  for (;;) {
    const uint64_t seq_before = shard.seq.load(std::memory_order_acquire);
    if (seq_before & 1) {
      CountSeqlockRetry();
      std::this_thread::yield();
      continue;
    }
    for (size_t w = 0; w < words; ++w) {
      packed[w] = shard.owned_packed[w].load(std::memory_order_relaxed);
    }
    for (size_t b = 0; b < bins; ++b) {
      (*hist)[b] = shard.owned_histogram[b].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (shard.seq.load(std::memory_order_relaxed) == seq_before) {
      return slots;
    }
    CountSeqlockRetry();
  }
}

void ShardedCollector::CountSeqlockRetry() const {
  seqlock_read_retries_->Add(1);
  if (telemetry::Enabled()) {
    telemetry::metrics::SeqlockReadRetriesTotal().Add(1);
  }
}

void ShardedCollector::IngestLocked(Shard& shard, const SlotReport& report) {
  // Non-finite values would collide with the NaN missing-slot sentinel and
  // poison the streaming aggregates; no library path produces them
  // (perturbers sanitize, report I/O validates), so a garbage report from
  // an external transport is simply discarded.
  if (!std::isfinite(report.value)) return;
  const auto [it, inserted] =
      shard.index.try_emplace(report.user_id,
                              static_cast<uint32_t>(shard.last_slot.size()));
  const uint32_t dense = it->second;
  if (inserted) {
    shard.last_slot.push_back(static_cast<uint32_t>(report.slot));
    shard.reports_per_user.push_back(0);
  } else {
    shard.last_slot[dense] = std::max(shard.last_slot[dense],
                                      static_cast<uint32_t>(report.slot));
  }
  GrowSlots(shard, report.slot + 1);
  const SlotHistogramOptions& hist = options_.histogram;
  uint32_t* hist_row =
      hist.enabled ? shard.histogram.data() + report.slot * hist.row_size()
                   : nullptr;

  if (options_.keep_streams) {
    if (report.slot >= shard.values.size()) {
      shard.values.resize(report.slot + 1);
    }
    std::vector<double>& row = shard.values[report.slot];
    if (dense >= row.size()) row.resize(dense + 1, kMissing);
    const double old_value = row[dense];
    row[dense] = report.value;
    if (std::isnan(old_value)) {
      if (shard.slots[report.slot].Add(report.value)) {
        ++shard.saturated_reports;
      }
      if (hist_row != nullptr) {
        BumpBin(hist_row[hist.BinFor(report.value)],
                shard.saturated_reports);
      }
      ++shard.reports_per_user[dense];
      ++shard.report_count;
    } else {
      // Overwrite: move the old value's unit count to the new bin, the
      // histogram analogue of SlotAggregate::Replace.
      if (shard.slots[report.slot].Replace(old_value, report.value)) {
        ++shard.saturated_reports;
      }
      if (hist_row != nullptr) {
        --hist_row[hist.BinFor(old_value)];
        BumpBin(hist_row[hist.BinFor(report.value)],
                shard.saturated_reports);
      }
    }
  } else {
    // Aggregate-only mode cannot see a previous value, so every report is
    // treated as new (the documented at-most-once contract).
    if (shard.slots[report.slot].Add(report.value)) {
      ++shard.saturated_reports;
    }
    if (hist_row != nullptr) {
      BumpBin(hist_row[hist.BinFor(report.value)],
              shard.saturated_reports);
    }
    ++shard.reports_per_user[dense];
    ++shard.report_count;
  }
}

void ShardedCollector::ReserveUsers(size_t expected_users) {
  // Shard assignment is a splitmix64 hash, so the population spreads
  // near-uniformly; a small headroom factor covers the imbalance tail.
  const size_t per_shard = expected_users / shards_.size() +
                           expected_users / (4 * shards_.size()) + 16;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.reserve(per_shard);
    shard->last_slot.reserve(per_shard);
    shard->reports_per_user.reserve(per_shard);
  }
}

void ShardedCollector::IngestUserRun(uint64_t user_id, size_t base_slot,
                                     std::span<const double> values) {
  // Like Ingest, non-finite values are discarded -- before registration,
  // so a run with no finite value must not create the user.
  size_t first = 0;
  while (first < values.size() && !std::isfinite(values[first])) ++first;
  if (first == values.size()) return;
  size_t last = values.size() - 1;
  while (!std::isfinite(values[last])) --last;  // exists: first <= last

  telemetry::ScopedTimer ingest_timer;
  if (telemetry::Enabled()) {
    telemetry::metrics::IngestRunsTotal().Add(1);
    telemetry::metrics::IngestReportsTotal().Add(last - first + 1);
    if (telemetry::ShouldSample()) {
      ingest_timer.Arm(&telemetry::metrics::IngestRunSeconds());
    }
  }

  Shard& shard = *shards_[ShardIndex(user_id)];
  if (options_.single_writer) {
    IngestOwnedRun(shard, user_id, base_slot, values, first, last);
    return;
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  // Resolve the user's dense index once for the run.
  const auto [it, inserted] =
      shard.index.try_emplace(user_id,
                              static_cast<uint32_t>(shard.last_slot.size()));
  const uint32_t dense = it->second;
  if (inserted) {
    shard.last_slot.push_back(static_cast<uint32_t>(base_slot + first));
    shard.reports_per_user.push_back(0);
  }
  shard.last_slot[dense] = std::max(
      shard.last_slot[dense], static_cast<uint32_t>(base_slot + last));
  const size_t end_slot = base_slot + last + 1;  // one past the run
  GrowSlots(shard, end_slot);
  const SlotHistogramOptions& hist = options_.histogram;

  if (!options_.keep_streams) {
    // Aggregate-only fast path: one exact add per slot and bulk counter
    // updates; nothing else to maintain. Saturation is accumulated
    // branchlessly (Add's bool as 0/1) so the loop carries no
    // data-dependent branch besides the all-finite check.
    size_t ingested = 0;
    uint64_t saturated = 0;
    SlotAggregate* const slots_base = shard.slots.data() + base_slot;
    for (size_t i = first; i <= last; ++i) {
      if (!std::isfinite(values[i])) continue;
      saturated += static_cast<uint64_t>(slots_base[i].Add(values[i]));
      ++ingested;
    }
    shard.saturated_reports += saturated;
    if (hist.enabled) {
      // Separate pass for the bins: keeps the aggregate loop's int128
      // dependency chain free of the bin math and the strided row
      // stores, which measurably beats a fused loop at 1M users.
      const size_t row_size = hist.row_size();
      uint32_t* rows = shard.histogram.data() + base_slot * row_size;
      for (size_t i = first; i <= last; ++i) {
        if (!std::isfinite(values[i])) continue;
        BumpBin(rows[i * row_size + hist.BinFor(values[i])],
                shard.saturated_reports);
      }
    }
    shard.reports_per_user[dense] += static_cast<uint32_t>(ingested);
    shard.report_count += ingested;
    return;
  }

  if (end_slot > shard.values.size()) shard.values.resize(end_slot);
  for (size_t i = first; i <= last; ++i) {
    if (!std::isfinite(values[i])) continue;
    const size_t slot = base_slot + i;
    std::vector<double>& row = shard.values[slot];
    if (dense >= row.size()) row.resize(dense + 1, kMissing);
    const double old_value = row[dense];
    row[dense] = values[i];
    uint32_t* hist_row =
        hist.enabled ? shard.histogram.data() + slot * hist.row_size()
                     : nullptr;
    if (std::isnan(old_value)) {
      if (shard.slots[slot].Add(values[i])) ++shard.saturated_reports;
      if (hist_row != nullptr) {
        BumpBin(hist_row[hist.BinFor(values[i])],
                shard.saturated_reports);
      }
      ++shard.reports_per_user[dense];
      ++shard.report_count;
    } else {
      if (shard.slots[slot].Replace(old_value, values[i])) {
        ++shard.saturated_reports;
      }
      if (hist_row != nullptr) {
        --hist_row[hist.BinFor(old_value)];
        BumpBin(hist_row[hist.BinFor(values[i])],
                shard.saturated_reports);
      }
    }
  }
}

void ShardedCollector::Ingest(const SlotReport& report) {
  if (options_.single_writer) {
    // Funnel through the run path: single-writer storage has no locked
    // per-report variant, and aggregate-only mode (which single_writer
    // implies) treats every report as new either way.
    IngestUserRun(report.user_id, report.slot, {&report.value, 1});
    return;
  }
  Shard& shard = *shards_[ShardIndex(report.user_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  IngestLocked(shard, report);
}

void ShardedCollector::IngestBatch(std::span<const SlotReport> reports) {
  if (reports.empty()) return;
  if (options_.single_writer) {
    for (const SlotReport& report : reports) {
      IngestUserRun(report.user_id, report.slot, {&report.value, 1});
    }
    return;
  }
  if (shards_.size() == 1) {
    Shard& shard = *shards_[0];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const SlotReport& report : reports) IngestLocked(shard, report);
    return;
  }
  // Bucket report indices by shard in one pass, then lock each shard once.
  std::vector<std::vector<uint32_t>> buckets(shards_.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    buckets[ShardIndex(reports[i].user_id)].push_back(
        static_cast<uint32_t>(i));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (uint32_t i : buckets[s]) IngestLocked(shard, reports[i]);
  }
}

size_t ShardedCollector::user_count() const {
  size_t total = 0;
  if (options_.single_writer) {
    // The owner maintains a dedicated atomic counter precisely so this
    // query never touches its lock-free index map.
    for (const auto& shard : shards_) {
      total += shard->owned_users.load(std::memory_order_relaxed);
    }
    return total;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->index.size();
  }
  return total;
}

size_t ShardedCollector::report_count() const {
  size_t total = 0;
  if (options_.single_writer) {
    for (const auto& shard : shards_) {
      total += shard->owned_reports.load(std::memory_order_relaxed);
    }
    return total;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->report_count;
  }
  return total;
}

uint64_t ShardedCollector::saturated_report_count() const {
  uint64_t total = 0;
  if (options_.single_writer) {
    for (const auto& shard : shards_) {
      total += shard->owned_saturated.load(std::memory_order_relaxed);
    }
    return total;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->saturated_reports;
  }
  return total;
}

uint64_t ShardedCollector::seqlock_read_retries() const {
  return seqlock_read_retries_->Value();
}

bool ShardedCollector::Contains(uint64_t user_id) const {
  const Shard& shard = *shards_[ShardIndex(user_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.contains(user_id);
}

size_t ShardedCollector::SlotCount(uint64_t user_id) const {
  const Shard& shard = *shards_[ShardIndex(user_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(user_id);
  return it == shard.index.end() ? 0 : shard.reports_per_user[it->second];
}

size_t ShardedCollector::SlotSpan() const {
  size_t span = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    span = std::max(span, options_.single_writer ? shard->owned_slots
                                                 : shard->slots.size());
  }
  return span;
}

Result<std::vector<double>> ShardedCollector::GapFilledStream(
    uint64_t user_id) const {
  if (!options_.keep_streams) {
    return Status::FailedPrecondition(
        "per-user streams require keep_streams = true");
  }
  const Shard& shard = *shards_[ShardIndex(user_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(user_id);
  if (it == shard.index.end()) return Status::NotFound("unknown user");
  const uint32_t dense = it->second;
  const size_t n = static_cast<size_t>(shard.last_slot[dense]) + 1;
  std::vector<double> raw(n);
  for (size_t t = 0; t < n; ++t) {
    raw[t] = RawValueAt(shard.values, t, dense);
  }
  return FillGapsForward(raw);
}

Result<double> ShardedCollector::SubsequenceMean(uint64_t user_id,
                                                 size_t begin,
                                                 size_t len) const {
  if (len == 0) return Status::InvalidArgument("len must be >= 1");
  if (!options_.keep_streams) {
    return Status::FailedPrecondition(
        "per-user streams require keep_streams = true");
  }
  const Shard& shard = *shards_[ShardIndex(user_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(user_id);
  if (it == shard.index.end()) return Status::NotFound("unknown user");
  const uint32_t dense = it->second;
  KahanSum sum;
  size_t count = 0;
  for (size_t t = begin; t < begin + len; ++t) {
    const double v = RawValueAt(shard.values, t, dense);
    if (!std::isnan(v)) {
      sum.Add(v);
      ++count;
    }
  }
  if (count == 0) {
    return Status::NotFound("no reports in the requested interval");
  }
  return sum.Total() / static_cast<double>(count);
}

std::vector<SlotAggregate> ShardedCollector::PopulationSlotAggregates() const {
  std::vector<SlotAggregate> merged;
  if (options_.single_writer) {
    std::vector<uint64_t> packed;
    for (const auto& shard : shards_) {
      const size_t slots = SnapshotOwned(*shard, packed, nullptr);
      if (slots > merged.size()) merged.resize(slots);
      for (size_t t = 0; t < slots; ++t) {
        merged[t].Merge(UnpackSnapshotSlot(packed.data() +
                                           t * kPackedWords));
      }
    }
    return merged;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Sized inside the lock: a concurrent ingest may have grown a shard
    // past any span observed before this loop.
    if (shard->slots.size() > merged.size()) {
      merged.resize(shard->slots.size());
    }
    for (size_t t = 0; t < shard->slots.size(); ++t) {
      merged[t].Merge(shard->slots[t]);
    }
  }
  return merged;
}

Result<std::vector<std::vector<uint64_t>>>
ShardedCollector::PopulationSlotHistograms() const {
  if (!options_.histogram.enabled) {
    return Status::FailedPrecondition(
        "per-slot histograms require histogram.enabled = true");
  }
  const size_t row_size = options_.histogram.row_size();
  std::vector<std::vector<uint64_t>> merged;
  if (options_.single_writer) {
    std::vector<uint64_t> packed;
    std::vector<uint32_t> bins;
    for (const auto& shard : shards_) {
      const size_t slots = SnapshotOwned(*shard, packed, &bins);
      if (slots > merged.size()) {
        merged.resize(slots, std::vector<uint64_t>(row_size, 0));
      }
      for (size_t t = 0; t < slots; ++t) {
        const uint32_t* row = bins.data() + t * row_size;
        for (size_t b = 0; b < row_size; ++b) merged[t][b] += row[b];
      }
    }
    return merged;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Sized inside the lock, like PopulationSlotAggregates: a concurrent
    // ingest may have grown a shard past any previously observed span.
    const size_t shard_slots = shard->histogram.size() / row_size;
    if (shard_slots > merged.size()) {
      merged.resize(shard_slots, std::vector<uint64_t>(row_size, 0));
    }
    for (size_t t = 0; t < shard_slots; ++t) {
      const uint32_t* row = shard->histogram.data() + t * row_size;
      for (size_t b = 0; b < row_size; ++b) merged[t][b] += row[b];
    }
  }
  return merged;
}

uint64_t ShardedCollector::histogram_outlier_count() const {
  if (!options_.histogram.enabled) return 0;
  const size_t row_size = options_.histogram.row_size();
  uint64_t total = 0;
  if (options_.single_writer) {
    std::vector<uint64_t> packed;
    std::vector<uint32_t> bins;
    for (const auto& shard : shards_) {
      const size_t slots = SnapshotOwned(*shard, packed, &bins);
      for (size_t t = 0; t < slots; ++t) {
        total += bins[t * row_size] + bins[t * row_size + row_size - 1];
      }
    }
    return total;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Under/overflow are the first and last entry of each slot row.
    for (size_t t = 0; t < shard->histogram.size() / row_size; ++t) {
      total += shard->histogram[t * row_size] +
               shard->histogram[t * row_size + row_size - 1];
    }
  }
  return total;
}

Result<CollectorShardState> ShardedCollector::ExportShardState(
    size_t shard_index) const {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (options_.keep_streams) {
    return Status::FailedPrecondition(
        "shard snapshots cover aggregate-only mode (keep_streams = "
        "false); raw streams are not serialized");
  }
  const Shard& shard = *shards_[shard_index];
  if (options_.single_writer) {
    // The aggregate arrays come through the seqlock like any reader's;
    // the per-user bookkeeping below is owner-private, so this path
    // additionally requires the owner thread or quiescence -- which its
    // only caller, the checkpoint tier, guarantees with its exclusive
    // lock (and recovery runs before any ingest).
    std::vector<uint64_t> packed;
    std::vector<uint32_t> bins;
    CollectorShardState state;
    const size_t slots = SnapshotOwned(shard, packed, &bins);
    state.slots.resize(slots);
    for (size_t t = 0; t < slots; ++t) {
      state.slots[t] = UnpackSnapshotSlot(packed.data() + t * kPackedWords);
    }
    state.histogram.assign(bins.begin(), bins.end());
    state.users.resize(shard.last_slot.size());
    for (const auto& [user_id, dense] : shard.index) {
      state.users[dense] = {user_id, shard.last_slot[dense],
                            shard.reports_per_user[dense]};
    }
    state.report_count = shard.owned_reports.load(std::memory_order_relaxed);
    state.saturated_reports =
        shard.owned_saturated.load(std::memory_order_relaxed);
    return state;
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  CollectorShardState state;
  state.users.resize(shard.last_slot.size());
  for (const auto& [user_id, dense] : shard.index) {
    state.users[dense] = {user_id, shard.last_slot[dense],
                          shard.reports_per_user[dense]};
  }
  state.slots = shard.slots;
  state.histogram = shard.histogram;
  state.report_count = shard.report_count;
  state.saturated_reports = shard.saturated_reports;
  return state;
}

Status ShardedCollector::RestoreShardState(size_t shard_index,
                                           CollectorShardState state) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (options_.keep_streams) {
    return Status::FailedPrecondition(
        "shard snapshots cover aggregate-only mode (keep_streams = false)");
  }
  const size_t expected_histogram =
      options_.histogram.enabled
          ? state.slots.size() * options_.histogram.row_size()
          : 0;
  if (state.histogram.size() != expected_histogram) {
    return Status::InvalidArgument(
        "snapshot histogram layout does not match this collector's "
        "configuration (expected " + std::to_string(expected_histogram) +
        " entries, snapshot has " + std::to_string(state.histogram.size()) +
        ")");
  }
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  const uint64_t prior_reports =
      options_.single_writer
          ? shard.owned_reports.load(std::memory_order_relaxed)
          : shard.report_count;
  if (!shard.index.empty() || prior_reports != 0) {
    return Status::FailedPrecondition(
        "RestoreShardState wants an empty shard (restore runs before any "
        "ingest)");
  }
  shard.index.reserve(state.users.size());
  shard.last_slot.resize(state.users.size());
  shard.reports_per_user.resize(state.users.size());
  for (size_t dense = 0; dense < state.users.size(); ++dense) {
    const CollectorShardState::UserEntry& entry = state.users[dense];
    const bool inserted =
        shard.index.emplace(entry.user_id, static_cast<uint32_t>(dense))
            .second;
    if (!inserted) {
      // A duplicated user id would desynchronize the dense arrays; a
      // snapshot can only contain one by corruption the CRC missed or a
      // writer bug, so refuse and leave this shard partially built --
      // the caller (recovery) discards the whole backend on any error.
      return Status::Internal("snapshot contains a duplicated user id");
    }
    shard.last_slot[dense] = entry.last_slot;
    shard.reports_per_user[dense] = entry.reports;
  }
  if (options_.single_writer) {
    // Restore runs single-threaded before any ingest, so plain relaxed
    // stores into freshly allocated atomic arrays suffice.
    const size_t slots = state.slots.size();
    shard.owned_packed =
        MakeAlignedZeroed<std::atomic<uint64_t>>(slots * kPackedWords);
    for (size_t t = 0; t < slots; ++t) {
      StorePackedSlot(shard.owned_packed.get() + t * kPackedWords,
                      state.slots[t]);
    }
    if (options_.histogram.enabled) {
      shard.owned_histogram =
          MakeAlignedZeroed<std::atomic<uint32_t>>(state.histogram.size());
      for (size_t b = 0; b < state.histogram.size(); ++b) {
        shard.owned_histogram[b].store(state.histogram[b],
                                       std::memory_order_relaxed);
      }
    }
    shard.owned_capacity = slots;
    shard.owned_slots = slots;
    shard.owned_users.store(state.users.size(), std::memory_order_relaxed);
    shard.owned_reports.store(state.report_count,
                              std::memory_order_relaxed);
    shard.owned_saturated.store(state.saturated_reports,
                                std::memory_order_relaxed);
    return Status::OK();
  }
  shard.slots = std::move(state.slots);
  shard.histogram = std::move(state.histogram);
  shard.report_count = static_cast<size_t>(state.report_count);
  shard.saturated_reports = state.saturated_reports;
  return Status::OK();
}

std::vector<double> ShardedCollector::PopulationSlotMeans() const {
  const std::vector<SlotAggregate> aggregates = PopulationSlotAggregates();
  std::vector<double> means(aggregates.size(), kMissing);
  for (size_t t = 0; t < aggregates.size(); ++t) {
    if (aggregates[t].Count() > 0) means[t] = aggregates[t].Mean();
  }
  return means;
}

}  // namespace capp
