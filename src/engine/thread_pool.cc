#include "engine/thread_pool.h"

#include <atomic>
#include <thread>
#include <vector>

namespace capp {

int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min<size_t>(ResolveThreadCount(threads), n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // The caller's thread participates.
  for (std::thread& t : pool) t.join();
}

}  // namespace capp
