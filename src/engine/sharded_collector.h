// Sharded, thread-safe collector storage: the in-RAM CollectorBackend
// behind CollectorSession and the Fleet simulator.
//
// The seed collector stored reports in std::map<user, std::map<slot, v>>,
// which is pointer-chasing-heavy and single-threaded. ShardedCollector
// replaces it with:
//
//   * N independent shards, each guarded by its own mutex; a report's shard
//     is a splitmix64 hash of its user id, so concurrent writers touching
//     different users rarely contend.
//   * Flat per-shard storage: user ids map to dense indices through one
//     unordered_map lookup; values live in slot-major arrays
//     (values[slot][dense_user]) with NaN marking missing reports.
//   * Streaming per-slot aggregates (count / fixed-point exact sums of x
//     and x^2, including the reverse update for overwritten reports), so
//     population means and variances are O(1) per report, bit-identical
//     for any ingest order, and remain available in aggregate-only mode
//     where raw streams are never materialized.
//
// Aggregate-only mode (keep_streams = false) is what lets the engine run
// million-user fleets: per-report cost and memory are independent of the
// population's total report volume. It is also the mode the storage
// tier's checkpoints cover (ExportShardState / RestoreShardState): the
// exact per-shard aggregate state round-trips through
// storage/checkpoint.h, while raw streams are deliberately not
// serialized (they are O(users * slots) and the durable tier exists for
// the aggregate-only production shape).
//
// Single-writer mode (single_writer = true) goes one step further for
// the shard-affinity transport shape: when the transport routes every
// shard group to exactly one consumer thread, each shard has exactly
// one writer, so the per-shard mutex buys nothing on the ingest path.
// Ingest then skips the mutex entirely and publishes the per-slot
// aggregates (and histogram bins) through a per-shard seqlock: each
// aggregate lives as its five Packed words in a flat atomic array, the
// owner brackets every run with an odd/even sequence counter, and
// concurrent aggregate readers copy the words and retry if the
// sequence was odd or moved (a torn snapshot) instead of ever blocking
// the writer. The shard mutex survives only for storage growth: a
// reader holds it across its snapshot, so the owner's rare capacity
// doubling (also under the mutex) can never reallocate the arrays out
// from under a racing copy. Aggregates are exact integer sums, so the
// two locking modes are bit-identical for the same ingested multiset.
//
// SlotAggregate and SlotHistogramOptions -- the exact-accumulation
// building blocks -- live in storage/collector_backend.h so every
// backend shares them; this header re-exports them via that include.
#ifndef CAPP_ENGINE_SHARDED_COLLECTOR_H_
#define CAPP_ENGINE_SHARDED_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "storage/collector_backend.h"
#include "stream/report.h"
#include "telemetry/metrics.h"

namespace capp {

/// Deleter for cache-line-aligned arrays of trivially-destructible
/// payloads (the owned-shard seqlock storage): frees the 64-byte-aligned
/// allocation without running destructors. make_unique only guarantees
/// alignof(std::max_align_t) (16 bytes), which left the packed 5-word
/// aggregate slots starting mid-line -- see sharded_collector.cc's
/// MakeAlignedZeroed for the layout story.
struct AlignedFree {
  void operator()(void* p) const noexcept {
    ::operator delete(p, std::align_val_t{64});
  }
};

template <typename T>
using AlignedAtomicArray = std::unique_ptr<T[], AlignedFree>;

/// Storage knobs for a sharded collector.
struct ShardedCollectorOptions {
  /// Number of independent storage shards (>= 1). More shards mean less
  /// lock contention under concurrent ingest; 16 is plenty below ~32 cores.
  size_t num_shards = 16;
  /// Values per slot (>= 1): a d-dimensional stream stores d attribute
  /// values for every (user, slot). Storage stays one flat array of
  /// "cells" -- cell = slot * dims + dim, the interleaved layout -- so
  /// every ingest, aggregate, digest, and checkpoint path is untouched
  /// arithmetic over cells and dims = 1 is bit-identical to a collector
  /// that never heard of dimensions (cell == slot). The dims-aware
  /// IngestUserRun overload transposes the wire's dim-major payload into
  /// cell order; per-dimension queries slice cells back out.
  size_t dims = 1;
  /// When true, raw per-(user, slot) values are kept and per-user stream
  /// queries work. When false only the per-slot aggregates are maintained:
  /// memory stays O(shards * slots) no matter how many users report, but
  /// each (user, slot) pair must then be ingested at most once (overwrites
  /// cannot be detected without the raw values).
  bool keep_streams = true;
  /// Single-writer (shard-owned) ingest: the caller guarantees that at
  /// most one thread ever ingests into any given shard (the transport's
  /// shard_affinity routing provides exactly this), and in exchange the
  /// ingest path skips the per-shard mutex entirely, publishing the
  /// per-slot aggregates and histogram bins through a per-shard seqlock
  /// for concurrent aggregate readers (see the class comment). Requires
  /// keep_streams = false. Per-user queries (Contains / SlotCount) are
  /// then safe only from the shard's owning thread or after ingest has
  /// quiesced -- which covers every existing caller: the durable tier's
  /// dedup probe runs on the owning consumer, its checkpoints hold an
  /// exclusive lock, and stats readers run after Drain().
  bool single_writer = false;
  /// Per-slot value histograms (off by default: the analytics tier).
  SlotHistogramOptions histogram = {};
};

/// Thread-safe sharded report store with streaming per-slot aggregates.
/// All methods are safe to call concurrently.
class ShardedCollector : public CollectorBackend {
 public:
  static Result<ShardedCollector> Create(ShardedCollectorOptions options = {});

  ShardedCollector(ShardedCollector&&) = default;
  ShardedCollector& operator=(ShardedCollector&&) = default;

  /// Ingests one report. Slots may arrive in any order per user; a repeated
  /// (user, slot) pair overwrites (last write wins), matching the legacy
  /// collector (overwrites require keep_streams). Reports with non-finite
  /// values are discarded: they cannot be represented next to the NaN
  /// missing-slot sentinel, and no library path emits them. Raw streams
  /// store any finite value, but the per-slot aggregates saturate report
  /// magnitudes at 2^16 (see SlotAggregate) -- far beyond any sanitized
  /// mechanism output.
  void Ingest(const SlotReport& report);

  /// Ingests a batch, grouping reports by shard so each shard's lock is
  /// taken once per call instead of once per report.
  void IngestBatch(std::span<const SlotReport> reports);

  /// Pre-sizes every shard's user index and per-user bookkeeping for an
  /// expected population (a hint; populations may exceed it). Eliminates
  /// rehash stalls while a large fleet registers its users.
  void ReserveUsers(size_t expected_users) override;

  /// Ingests one user's run of consecutive slots: values[i] is the report
  /// for slot base_slot + i. Equivalent to Ingest({user_id, base_slot+i,
  /// values[i]}) per element in order, but the shard hash, lock
  /// acquisition, and user-index resolution happen once for the whole run
  /// -- the fleet's per-user fast path (a simulated device uploads its
  /// stream in one piece).
  void IngestUserRun(uint64_t user_id, size_t base_slot,
                     std::span<const double> values) override;

  /// Re-exposes the base class's dims-aware overload (dim-major payload,
  /// transposed to cells); the 3-arg override above would otherwise hide
  /// it under C++ name lookup.
  using CollectorBackend::IngestUserRun;

  /// Values per slot (ShardedCollectorOptions::dims).
  size_t dims() const override { return options_.dims; }

  /// Number of distinct users seen so far.
  size_t user_count() const override;

  /// Total reports ingested (overwrites count once).
  size_t report_count() const override;

  /// Reports whose magnitude exceeded the SlotAggregate saturation bound
  /// (2^16) and were clamped. Nonzero means per-slot count/mean/M2 no
  /// longer describe the true reports -- the transport hub turns this
  /// into a Drain() error and Fleet::Run fails loudly.
  uint64_t saturated_report_count() const override;

  /// The shard a user's reports land in: splitmix64(user_id) % num_shards.
  /// A pure function of (user_id, num_shards), exposed so the transport
  /// tier can route each run to the consumer owning its shard group.
  size_t ShardIndexOf(uint64_t user_id) const override {
    return ShardIndex(user_id);
  }

  /// True if the user has reported at least once.
  bool Contains(uint64_t user_id) const override;

  /// Number of distinct slots reported by a user (0 if unknown). In
  /// aggregate-only mode this counts the user's ingested reports, which
  /// equals distinct slots under that mode's at-most-once contract.
  size_t SlotCount(uint64_t user_id) const;

  /// Highest slot seen + 1 over all users (0 when empty). With dims > 1
  /// this counts *cells* (time slots x dims), matching every other
  /// per-slot query; divide by dims() for the time-slot span.
  size_t SlotSpan() const override;

  /// The user's raw stream over slots [0, user's last slot], with missing
  /// slots gap-filled by the shared last-observation policy (gap_fill.h).
  /// NotFound for unknown users; FailedPrecondition in aggregate-only mode.
  Result<std::vector<double>> GapFilledStream(uint64_t user_id) const;

  /// Mean of the user's reports over slots [begin, begin+len), counting
  /// only slots the user actually reported. NotFound when none exist.
  Result<double> SubsequenceMean(uint64_t user_id, size_t begin,
                                 size_t len) const;

  /// Per-slot population mean over all users that reported each slot, for
  /// slots [0, SlotSpan()). Slots nobody reported yield NaN.
  std::vector<double> PopulationSlotMeans() const;

  /// Per-slot population aggregates (count/mean/variance), merged across
  /// shards, for slots [0, SlotSpan()).
  std::vector<SlotAggregate> PopulationSlotAggregates() const override;

  /// Per-slot value histograms merged across shards, for slots
  /// [0, SlotSpan()). Row t has histogram.row_size() entries laid out
  /// [underflow, bins..., overflow] (SlotHistogramOptions::BinFor).
  /// Integer counts merged by addition: bit-identical for any ingest
  /// order. FailedPrecondition when the tier is disabled.
  Result<std::vector<std::vector<uint64_t>>> PopulationSlotHistograms()
      const override;

  /// Finite reports that fell outside the histogram range [lo, hi] and
  /// were counted in an under/overflow bin (0 when the tier is
  /// disabled). Every report is still counted somewhere -- outliers are
  /// clamped into the edge bins by the analytics layer, exactly like the
  /// pooled-report estimator clamps them -- so nonzero here is expected
  /// for feedback-calibrated PP reports at small budgets; a *large*
  /// fraction means the configured range does not cover the workload.
  uint64_t histogram_outlier_count() const override;

  size_t num_shards() const override { return shards_.size(); }

  /// Exact snapshot of one shard's aggregate-mode state, the checkpoint
  /// serialization unit. FailedPrecondition with keep_streams = true:
  /// raw streams are not serialized, and silently dropping them on a
  /// restore would violate the backend's own query contract.
  Result<CollectorShardState> ExportShardState(size_t shard) const override;

  /// Restores a shard exported by ExportShardState. The shard must be
  /// empty (restore happens before any ingest during recovery), and the
  /// state's histogram layout must match this collector's options; a
  /// restored collector is bit-identical to one that ingested the
  /// covered runs directly.
  Status RestoreShardState(size_t shard, CollectorShardState state) override;

  /// Total seqlock snapshot retries across shards: how often an
  /// aggregate reader observed a write in progress (odd sequence) or a
  /// torn copy (sequence moved) and re-read. Always 0 in mutex mode,
  /// and 0 in single-writer mode when nobody read during ingest.
  uint64_t seqlock_read_retries() const;

  const ShardedCollectorOptions& options() const { return options_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint32_t> index;  // user id -> dense index
    std::vector<uint32_t> last_slot;               // per dense index
    std::vector<uint32_t> reports_per_user;        // per dense index
    // Slot-major raw values, values[slot][dense_index]; NaN = missing.
    // Inner rows grow lazily, so reads must treat short rows as missing.
    // Unused in aggregate-only mode.
    std::vector<std::vector<double>> values;
    std::vector<SlotAggregate> slots;  // per-slot streaming aggregates
    // Flat per-slot value histograms, histogram[slot * row_size + bin];
    // grown in lockstep with `slots`. Empty when the tier is disabled.
    // 32-bit counters keep the tier's working set (shards x slots x
    // bins) half the size of uint64 rows, which is most of its ingest
    // cost at 1M users. A bin pinned at 2^32 - 1 (>4e9 reports in one
    // (shard, slot, bin) -- beyond the aggregates' own documented
    // headroom) stops counting and reports through saturated_reports,
    // the existing "collector state no longer describes the reports"
    // channel, so even that absurd scale fails loudly, never silently.
    std::vector<uint32_t> histogram;
    size_t report_count = 0;
    uint64_t saturated_reports = 0;  // reports clamped by SlotAggregate

    // --- Single-writer mode state (unused in mutex mode). ---
    // Seqlock sequence: odd exactly while the owning thread is inside a
    // write section mutating the atomic words below.
    std::atomic<uint64_t> seq{0};
    // Per-slot aggregates as their SlotAggregate::Packed words (5 per
    // slot) and flat histogram bins, in atomics so seqlock readers may
    // race with the owner without UB. The first owned_slots entries are
    // valid; capacity doubles under `mu` (see GrowOwnedSlots), which a
    // reader holds across its whole snapshot, so growth can never
    // reallocate the arrays out from under a racing copy.
    AlignedAtomicArray<std::atomic<uint64_t>> owned_packed;
    AlignedAtomicArray<std::atomic<uint32_t>> owned_histogram;
    size_t owned_slots = 0;     // valid slot prefix; readers see it via mu
    size_t owned_capacity = 0;  // allocated slots
    // Monotonic counters, updated by the owner outside the seqlock and
    // read relaxed: totals, not part of the consistent-snapshot story.
    std::atomic<uint64_t> owned_users{0};
    std::atomic<uint64_t> owned_reports{0};
    std::atomic<uint64_t> owned_saturated{0};
  };

  explicit ShardedCollector(ShardedCollectorOptions options);

  size_t ShardIndex(uint64_t user_id) const;
  // Applies one report to a shard. Caller holds the shard's lock.
  void IngestLocked(Shard& shard, const SlotReport& report);
  // Grows shard.slots (and the histogram rows, when enabled) to cover
  // `end_slot` slots. Caller holds the shard's lock.
  void GrowSlots(Shard& shard, size_t end_slot);
  // Single-writer ingest of one run (values[first..last] are the
  // trimmed finite span). Called by the owning thread only; takes the
  // shard mutex solely inside GrowOwnedSlots.
  void IngestOwnedRun(Shard& shard, uint64_t user_id, size_t base_slot,
                      std::span<const double> values, size_t first,
                      size_t last);
  // Grows the owned atomic arrays to cover end_slot slots. Owner only;
  // locks the shard mutex to exclude in-flight seqlock readers.
  void GrowOwnedSlots(Shard& shard, size_t end_slot);
  // Seqlock read: one consistent snapshot of an owned shard's packed
  // aggregate words (and histogram bins when hist != nullptr and the
  // tier is enabled). Returns the number of valid slots.
  size_t SnapshotOwned(const Shard& shard, std::vector<uint64_t>& packed,
                       std::vector<uint32_t>* hist) const;
  // Bumps the local retry counter and its registry mirror.
  void CountSeqlockRetry() const;

  ShardedCollectorOptions options_;
  // unique_ptr keeps the collector movable despite the per-shard mutexes.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Seqlock retry count as a telemetry::Counter (striped cells, lock-free
  // reads) -- the same primitive the metrics registry exports, so
  // EngineStats and a live scrape read one source of truth. unique_ptr
  // keeps the collector movable.
  std::unique_ptr<telemetry::Counter> seqlock_read_retries_;
};

}  // namespace capp

#endif  // CAPP_ENGINE_SHARDED_COLLECTOR_H_
