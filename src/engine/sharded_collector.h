// Sharded, thread-safe collector storage: the scaling backend behind
// CollectorSession and the Fleet simulator.
//
// The seed collector stored reports in std::map<user, std::map<slot, v>>,
// which is pointer-chasing-heavy and single-threaded. ShardedCollector
// replaces it with:
//
//   * N independent shards, each guarded by its own mutex; a report's shard
//     is a splitmix64 hash of its user id, so concurrent writers touching
//     different users rarely contend.
//   * Flat per-shard storage: user ids map to dense indices through one
//     unordered_map lookup; values live in slot-major arrays
//     (values[slot][dense_user]) with NaN marking missing reports.
//   * Streaming per-slot aggregates (count/mean/M2 via Welford updates,
//     including the reverse update for overwritten reports), so population
//     means and variances are O(1) per report and remain available in
//     aggregate-only mode where raw streams are never materialized.
//
// Aggregate-only mode (keep_streams = false) is what lets the engine run
// million-user fleets: per-report cost and memory are independent of the
// population's total report volume.
#ifndef CAPP_ENGINE_SHARDED_COLLECTOR_H_
#define CAPP_ENGINE_SHARDED_COLLECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/status.h"
#include "stream/report.h"

namespace capp {

/// Storage knobs for a sharded collector.
struct ShardedCollectorOptions {
  /// Number of independent storage shards (>= 1). More shards mean less
  /// lock contention under concurrent ingest; 16 is plenty below ~32 cores.
  size_t num_shards = 16;
  /// When true, raw per-(user, slot) values are kept and per-user stream
  /// queries work. When false only the per-slot aggregates are maintained:
  /// memory stays O(shards * slots) no matter how many users report, but
  /// each (user, slot) pair must then be ingested at most once (overwrites
  /// cannot be detected without the raw values).
  bool keep_streams = true;
};

/// Streaming per-slot population moments (Welford form).
struct SlotAggregate {
  size_t count = 0;   ///< Users that reported this slot.
  double mean = 0.0;  ///< Mean of their reports.
  double m2 = 0.0;    ///< Sum of squared deviations from the mean.

  /// Population variance of the slot's reports (0 when count < 2).
  double Variance() const { return count < 2 ? 0.0 : m2 / count; }

  /// Welford forward update with one new report.
  void Add(double x);
  /// Reverse Welford update removing a previously added report.
  void Remove(double x);
  /// Replaces a previously added report (overwrite semantics).
  void Replace(double old_value, double new_value);
  /// Chan's parallel combination of two aggregates.
  void Merge(const SlotAggregate& other);
};

/// Thread-safe sharded report store with streaming per-slot aggregates.
/// All methods are safe to call concurrently.
class ShardedCollector {
 public:
  static Result<ShardedCollector> Create(ShardedCollectorOptions options = {});

  ShardedCollector(ShardedCollector&&) = default;
  ShardedCollector& operator=(ShardedCollector&&) = default;

  /// Ingests one report. Slots may arrive in any order per user; a repeated
  /// (user, slot) pair overwrites (last write wins), matching the legacy
  /// collector (overwrites require keep_streams). Reports with non-finite
  /// values are discarded: they cannot be represented next to the NaN
  /// missing-slot sentinel, and no library path emits them.
  void Ingest(const SlotReport& report);

  /// Ingests a batch, grouping reports by shard so each shard's lock is
  /// taken once per call instead of once per report.
  void IngestBatch(std::span<const SlotReport> reports);

  /// Pre-sizes every shard's user index and per-user bookkeeping for an
  /// expected population (a hint; populations may exceed it). Eliminates
  /// rehash stalls while a large fleet registers its users.
  void ReserveUsers(size_t expected_users);

  /// Ingests one user's run of consecutive slots: values[i] is the report
  /// for slot base_slot + i. Equivalent to Ingest({user_id, base_slot+i,
  /// values[i]}) per element in order, but the shard hash, lock
  /// acquisition, and user-index resolution happen once for the whole run
  /// -- the fleet's per-user fast path (a simulated device uploads its
  /// stream in one piece).
  void IngestUserRun(uint64_t user_id, size_t base_slot,
                     std::span<const double> values);

  /// Number of distinct users seen so far.
  size_t user_count() const;

  /// Total reports ingested (overwrites count once).
  size_t report_count() const;

  /// True if the user has reported at least once.
  bool Contains(uint64_t user_id) const;

  /// Number of distinct slots reported by a user (0 if unknown). In
  /// aggregate-only mode this counts the user's ingested reports, which
  /// equals distinct slots under that mode's at-most-once contract.
  size_t SlotCount(uint64_t user_id) const;

  /// Highest slot seen + 1 over all users (0 when empty).
  size_t SlotSpan() const;

  /// The user's raw stream over slots [0, user's last slot], with missing
  /// slots gap-filled by the shared last-observation policy (gap_fill.h).
  /// NotFound for unknown users; FailedPrecondition in aggregate-only mode.
  Result<std::vector<double>> GapFilledStream(uint64_t user_id) const;

  /// Mean of the user's reports over slots [begin, begin+len), counting
  /// only slots the user actually reported. NotFound when none exist.
  Result<double> SubsequenceMean(uint64_t user_id, size_t begin,
                                 size_t len) const;

  /// Per-slot population mean over all users that reported each slot, for
  /// slots [0, SlotSpan()). Slots nobody reported yield NaN.
  std::vector<double> PopulationSlotMeans() const;

  /// Per-slot population aggregates (count/mean/variance), merged across
  /// shards, for slots [0, SlotSpan()).
  std::vector<SlotAggregate> PopulationSlotAggregates() const;

  const ShardedCollectorOptions& options() const { return options_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint32_t> index;  // user id -> dense index
    std::vector<uint32_t> last_slot;               // per dense index
    std::vector<uint32_t> reports_per_user;        // per dense index
    // Slot-major raw values, values[slot][dense_index]; NaN = missing.
    // Inner rows grow lazily, so reads must treat short rows as missing.
    // Unused in aggregate-only mode.
    std::vector<std::vector<double>> values;
    std::vector<SlotAggregate> slots;  // per-slot streaming aggregates
    size_t report_count = 0;
  };

  explicit ShardedCollector(ShardedCollectorOptions options);

  size_t ShardIndex(uint64_t user_id) const;
  // Applies one report to a shard. Caller holds the shard's lock.
  void IngestLocked(Shard& shard, const SlotReport& report);

  ShardedCollectorOptions options_;
  // unique_ptr keeps the collector movable despite the per-shard mutexes.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace capp

#endif  // CAPP_ENGINE_SHARDED_COLLECTOR_H_
