// Sharded, thread-safe collector storage: the scaling backend behind
// CollectorSession and the Fleet simulator.
//
// The seed collector stored reports in std::map<user, std::map<slot, v>>,
// which is pointer-chasing-heavy and single-threaded. ShardedCollector
// replaces it with:
//
//   * N independent shards, each guarded by its own mutex; a report's shard
//     is a splitmix64 hash of its user id, so concurrent writers touching
//     different users rarely contend.
//   * Flat per-shard storage: user ids map to dense indices through one
//     unordered_map lookup; values live in slot-major arrays
//     (values[slot][dense_user]) with NaN marking missing reports.
//   * Streaming per-slot aggregates (count / fixed-point exact sums of x
//     and x^2, including the reverse update for overwritten reports), so
//     population means and variances are O(1) per report, bit-identical
//     for any ingest order, and remain available in aggregate-only mode
//     where raw streams are never materialized.
//
// Aggregate-only mode (keep_streams = false) is what lets the engine run
// million-user fleets: per-report cost and memory are independent of the
// population's total report volume.
#ifndef CAPP_ENGINE_SHARDED_COLLECTOR_H_
#define CAPP_ENGINE_SHARDED_COLLECTOR_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/check.h"
#include "core/math_utils.h"
#include "core/status.h"
#include "stream/report.h"

namespace capp {

/// Opt-in per-slot histogram tier over the perturbed report values: the
/// raw material of streaming collector-side analytics (EM distribution
/// reconstruction without ever materializing a report matrix). Each slot
/// gets `num_bins` equal-width bins spanning [lo, hi] plus an underflow
/// and an overflow bin, so a report outside the configured range is
/// counted loudly instead of silently dropped or misbinned. Bin
/// assignment is a pure function of the value (FixedBinIndex), and the
/// counts are integers, so merged histograms -- like the fixed-point
/// SlotAggregates -- are bit-identical for any ingest order, transport,
/// or thread mix. Memory is O(shards * slots * num_bins), independent of
/// population size; the tier works in aggregate-only mode.
struct SlotHistogramOptions {
  bool enabled = false;
  /// Regular (in-range) bins. For SW-based analytics use
  /// StreamingAnalyzer::CollectorHistogramOptions, which sizes the bins
  /// to the EM estimator's output bucketization over [-b, 1+b].
  int num_bins = 64;
  double lo = 0.0;
  double hi = 1.0;

  /// Entries per slot row: underflow + regular bins + overflow.
  size_t row_size() const { return static_cast<size_t>(num_bins) + 2; }
  /// The row entry a finite value lands in: 0 for value < lo,
  /// num_bins + 1 for value > hi, else 1 + FixedBinIndex(...). A pure
  /// function of (value, options) -- the histogram determinism contract.
  size_t BinFor(double value) const {
    if (value < lo) return 0;
    if (value > hi) return static_cast<size_t>(num_bins) + 1;
    return 1 + static_cast<size_t>(FixedBinIndex(value, lo, hi, num_bins));
  }
};

/// Storage knobs for a sharded collector.
struct ShardedCollectorOptions {
  /// Number of independent storage shards (>= 1). More shards mean less
  /// lock contention under concurrent ingest; 16 is plenty below ~32 cores.
  size_t num_shards = 16;
  /// When true, raw per-(user, slot) values are kept and per-user stream
  /// queries work. When false only the per-slot aggregates are maintained:
  /// memory stays O(shards * slots) no matter how many users report, but
  /// each (user, slot) pair must then be ingested at most once (overwrites
  /// cannot be detected without the raw values).
  bool keep_streams = true;
  /// Per-slot value histograms (off by default: the analytics tier).
  SlotHistogramOptions histogram = {};
};

/// Streaming per-slot population moments with an order-independent
/// accumulation: each report is mapped to fixed-point integers (the value
/// at scale 2^-80, its square at scale 2^-60) and summed in 128-bit
/// integers. Integer addition commutes and never rounds, so an aggregate
/// -- and every statistic derived from it -- is a pure function of the
/// multiset of reports, bit-identical no matter which thread, transport,
/// shard layout, or arrival order delivered them. (The previous Welford
/// form rounded per-update, so concurrent ingest produced low-bit
/// differences that varied with scheduling.) The 2^-80 grid represents
/// every normal double down to 2^-28 in magnitude exactly, so a single
/// report's mean is that report bit-for-bit; below that, truncation costs
/// < 2^-80 per report. Magnitudes saturate at +/-2^16, far above any
/// sanitized mechanism output and small enough that neither sum can
/// overflow before ~2^31 worst-case (2^46 unit-range) reports per
/// (shard, slot).
struct SlotAggregate {
  /// Users that reported this slot.
  size_t Count() const { return count_; }
  /// Mean of their reports (0 when empty).
  double Mean() const;
  /// Sum of squared deviations from the mean (the Welford-style m2),
  /// derived as sxx - sx^2/n from the exact integer sums. The derivation
  /// is deterministic and order-independent but, unlike the old Welford
  /// recurrence, carries the naive formula's cancellation: absolute error
  /// is ~2^-52 * sxx, which is negligible for sanitized unit-range
  /// reports (~1e-10 at 1e9 reports) but loses relative accuracy when
  /// mean^2 dwarfs the variance near the 2^16 saturation bound.
  double M2() const;
  /// Population variance of the slot's reports (0 when count < 2).
  double Variance() const { return count_ < 2 ? 0.0 : M2() / count_; }

  /// Adds one report. `x` must not be NaN (the collector filters
  /// non-finite reports before aggregation); +/-infinity clamps to the
  /// saturation bound. Returns true when the report was clamped -- the
  /// aggregate is then wrong for the true value, so callers must count
  /// and surface the event instead of letting it pass silently (an
  /// unnormalized workload would otherwise yield bad count/mean/M2 with
  /// no signal).
  bool Add(double x);
  /// Removes a previously added report (the exact inverse of Add).
  void Remove(double x);
  /// Replaces a previously added report (overwrite semantics). Returns
  /// true when the new value saturated.
  bool Replace(double old_value, double new_value) {
    Remove(old_value);
    return Add(new_value);
  }
  /// Combines two aggregates (exact, commutative, associative).
  void Merge(const SlotAggregate& other);

 private:
  // Scales are exact powers of two, so the pre-cast multiplies never
  // round: quantization error comes only from the final truncating cast,
  // a pure function of the input value. |x| <= 2^16 puts the value sum at
  // <= 2^96 per report and the squared sum at <= 2^92 per report, leaving
  // >= 2^31 reports of headroom in a signed 128-bit accumulator even at
  // the saturation bound.
  static constexpr double kSumScale = 0x1p80;    // value grid 2^-80
  static constexpr double kSqScale = 0x1p60;     // squared grid 2^-60
  static constexpr double kFxLimit = 65536.0;    // saturation bound, 2^16

  static double ClampToRange(double x) {
    return x < -kFxLimit ? -kFxLimit : x > kFxLimit ? kFxLimit : x;
  }

  // trunc(x * 2^80) for |x| <= 2^16, as two int64 truncations instead of
  // one double->int128 conversion (which compilers expand to a ~4x slower
  // fixup sequence on the ingest hot path). hi = trunc(x * 2^46) fits 62
  // bits; the remainder is exact -- hi's integer part is representable
  // and the subtraction falls under Sterbenz's lemma -- so lo < 2^34
  // recovers the missing low bits. Verified bit-identical to the direct
  // cast across the full clamped range.
  static __int128 ToFixed80(double x) {
    const int64_t hi = static_cast<int64_t>(x * 0x1p46);
    const double rem = x - static_cast<double>(hi) * 0x1p-46;
    const int64_t lo = static_cast<int64_t>(rem * 0x1p80);
    return (static_cast<__int128>(hi) << 34) + lo;
  }

  // trunc(x * 2^60) for x in [0, 2^32] (squared clamped reports).
  static __int128 ToFixed60(double x) {
    const int64_t hi = static_cast<int64_t>(x * 0x1p27);
    const double rem = x - static_cast<double>(hi) * 0x1p-27;
    const int64_t lo = static_cast<int64_t>(rem * 0x1p60);
    return (static_cast<__int128>(hi) << 33) + lo;
  }

  size_t count_ = 0;
  __int128 sum_ = 0;     // sum of quantized reports, scale 2^-80
  __int128 sum_sq_ = 0;  // sum of quantized squared reports, scale 2^-60
};

inline bool SlotAggregate::Add(double x) {
  CAPP_DCHECK(!std::isnan(x));  // NaN would reach an undefined fp->int cast
  const double clamped = ClampToRange(x);
  ++count_;
  sum_ += ToFixed80(clamped);
  sum_sq_ += ToFixed60(clamped * clamped);
  return clamped != x;
}

inline void SlotAggregate::Remove(double x) {
  // Exact inverse of Add(x): the quantized integers depend only on x.
  CAPP_DCHECK(count_ > 0);
  CAPP_DCHECK(!std::isnan(x));
  const double clamped = ClampToRange(x);
  --count_;
  sum_ -= ToFixed80(clamped);
  sum_sq_ -= ToFixed60(clamped * clamped);
}

/// Thread-safe sharded report store with streaming per-slot aggregates.
/// All methods are safe to call concurrently.
class ShardedCollector {
 public:
  static Result<ShardedCollector> Create(ShardedCollectorOptions options = {});

  ShardedCollector(ShardedCollector&&) = default;
  ShardedCollector& operator=(ShardedCollector&&) = default;

  /// Ingests one report. Slots may arrive in any order per user; a repeated
  /// (user, slot) pair overwrites (last write wins), matching the legacy
  /// collector (overwrites require keep_streams). Reports with non-finite
  /// values are discarded: they cannot be represented next to the NaN
  /// missing-slot sentinel, and no library path emits them. Raw streams
  /// store any finite value, but the per-slot aggregates saturate report
  /// magnitudes at 2^16 (see SlotAggregate) -- far beyond any sanitized
  /// mechanism output.
  void Ingest(const SlotReport& report);

  /// Ingests a batch, grouping reports by shard so each shard's lock is
  /// taken once per call instead of once per report.
  void IngestBatch(std::span<const SlotReport> reports);

  /// Pre-sizes every shard's user index and per-user bookkeeping for an
  /// expected population (a hint; populations may exceed it). Eliminates
  /// rehash stalls while a large fleet registers its users.
  void ReserveUsers(size_t expected_users);

  /// Ingests one user's run of consecutive slots: values[i] is the report
  /// for slot base_slot + i. Equivalent to Ingest({user_id, base_slot+i,
  /// values[i]}) per element in order, but the shard hash, lock
  /// acquisition, and user-index resolution happen once for the whole run
  /// -- the fleet's per-user fast path (a simulated device uploads its
  /// stream in one piece).
  void IngestUserRun(uint64_t user_id, size_t base_slot,
                     std::span<const double> values);

  /// Number of distinct users seen so far.
  size_t user_count() const;

  /// Total reports ingested (overwrites count once).
  size_t report_count() const;

  /// Reports whose magnitude exceeded the SlotAggregate saturation bound
  /// (2^16) and were clamped. Nonzero means per-slot count/mean/M2 no
  /// longer describe the true reports -- the transport hub turns this
  /// into a Drain() error and Fleet::Run fails loudly.
  uint64_t saturated_report_count() const;

  /// The shard a user's reports land in: splitmix64(user_id) % num_shards.
  /// A pure function of (user_id, num_shards), exposed so the transport
  /// tier can route each run to the consumer owning its shard group.
  size_t ShardIndexOf(uint64_t user_id) const { return ShardIndex(user_id); }

  /// True if the user has reported at least once.
  bool Contains(uint64_t user_id) const;

  /// Number of distinct slots reported by a user (0 if unknown). In
  /// aggregate-only mode this counts the user's ingested reports, which
  /// equals distinct slots under that mode's at-most-once contract.
  size_t SlotCount(uint64_t user_id) const;

  /// Highest slot seen + 1 over all users (0 when empty).
  size_t SlotSpan() const;

  /// The user's raw stream over slots [0, user's last slot], with missing
  /// slots gap-filled by the shared last-observation policy (gap_fill.h).
  /// NotFound for unknown users; FailedPrecondition in aggregate-only mode.
  Result<std::vector<double>> GapFilledStream(uint64_t user_id) const;

  /// Mean of the user's reports over slots [begin, begin+len), counting
  /// only slots the user actually reported. NotFound when none exist.
  Result<double> SubsequenceMean(uint64_t user_id, size_t begin,
                                 size_t len) const;

  /// Per-slot population mean over all users that reported each slot, for
  /// slots [0, SlotSpan()). Slots nobody reported yield NaN.
  std::vector<double> PopulationSlotMeans() const;

  /// Per-slot population aggregates (count/mean/variance), merged across
  /// shards, for slots [0, SlotSpan()).
  std::vector<SlotAggregate> PopulationSlotAggregates() const;

  /// Per-slot value histograms merged across shards, for slots
  /// [0, SlotSpan()). Row t has histogram.row_size() entries laid out
  /// [underflow, bins..., overflow] (SlotHistogramOptions::BinFor).
  /// Integer counts merged by addition: bit-identical for any ingest
  /// order. FailedPrecondition when the tier is disabled.
  Result<std::vector<std::vector<uint64_t>>> PopulationSlotHistograms()
      const;

  /// Finite reports that fell outside the histogram range [lo, hi] and
  /// were counted in an under/overflow bin (0 when the tier is
  /// disabled). Every report is still counted somewhere -- outliers are
  /// clamped into the edge bins by the analytics layer, exactly like the
  /// pooled-report estimator clamps them -- so nonzero here is expected
  /// for feedback-calibrated PP reports at small budgets; a *large*
  /// fraction means the configured range does not cover the workload.
  uint64_t histogram_outlier_count() const;

  const ShardedCollectorOptions& options() const { return options_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint32_t> index;  // user id -> dense index
    std::vector<uint32_t> last_slot;               // per dense index
    std::vector<uint32_t> reports_per_user;        // per dense index
    // Slot-major raw values, values[slot][dense_index]; NaN = missing.
    // Inner rows grow lazily, so reads must treat short rows as missing.
    // Unused in aggregate-only mode.
    std::vector<std::vector<double>> values;
    std::vector<SlotAggregate> slots;  // per-slot streaming aggregates
    // Flat per-slot value histograms, histogram[slot * row_size + bin];
    // grown in lockstep with `slots`. Empty when the tier is disabled.
    // 32-bit counters keep the tier's working set (shards x slots x
    // bins) half the size of uint64 rows, which is most of its ingest
    // cost at 1M users. A bin pinned at 2^32 - 1 (>4e9 reports in one
    // (shard, slot, bin) -- beyond the aggregates' own documented
    // headroom) stops counting and reports through saturated_reports,
    // the existing "collector state no longer describes the reports"
    // channel, so even that absurd scale fails loudly, never silently.
    std::vector<uint32_t> histogram;
    size_t report_count = 0;
    uint64_t saturated_reports = 0;  // reports clamped by SlotAggregate
  };

  explicit ShardedCollector(ShardedCollectorOptions options);

  size_t ShardIndex(uint64_t user_id) const;
  // Applies one report to a shard. Caller holds the shard's lock.
  void IngestLocked(Shard& shard, const SlotReport& report);
  // Grows shard.slots (and the histogram rows, when enabled) to cover
  // `end_slot` slots. Caller holds the shard's lock.
  void GrowSlots(Shard& shard, size_t end_slot);

  ShardedCollectorOptions options_;
  // unique_ptr keeps the collector movable despite the per-shard mutexes.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace capp

#endif  // CAPP_ENGINE_SHARDED_COLLECTOR_H_
