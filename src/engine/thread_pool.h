// Minimal data-parallel execution for the engine: a work-stealing-free
// ParallelFor over an index range, with dynamic load balancing through an
// atomic cursor. Work units (fleet chunks) are coarse -- thousands of users
// each -- so one fetch_add per unit is negligible and idle threads never
// spin.
#ifndef CAPP_ENGINE_THREAD_POOL_H_
#define CAPP_ENGINE_THREAD_POOL_H_

#include <cstddef>
#include <functional>

namespace capp {

/// Runs fn(i) for every i in [0, n), distributing indices dynamically over
/// `threads` worker threads. threads <= 1 (or n <= 1) runs inline on the
/// caller's thread. Blocks until all indices are processed. `fn` must be
/// safe to call concurrently from different threads for different i.
void ParallelFor(size_t n, int threads, const std::function<void(size_t)>& fn);

/// The number of worker threads `requested` resolves to: values >= 1 pass
/// through; 0 means "one per hardware thread" (at least 1).
int ResolveThreadCount(int requested);

}  // namespace capp

#endif  // CAPP_ENGINE_THREAD_POOL_H_
