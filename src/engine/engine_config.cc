#include "engine/engine_config.h"

#include <bit>
#include <cstdio>
#include <vector>

#include "algorithms/perturber.h"
#include "transport/wire_format.h"

namespace capp {

std::string_view SignalKindName(SignalKind kind) {
  switch (kind) {
    case SignalKind::kConstant:
      return "constant";
    case SignalKind::kSinusoid:
      return "sinusoid";
    case SignalKind::kAr1:
      return "ar1";
    case SignalKind::kRandomWalk:
      return "walk";
    case SignalKind::kPiecewise:
      return "piecewise";
  }
  return "unknown";
}

Result<SignalKind> ParseSignalKind(std::string_view name) {
  for (SignalKind kind :
       {SignalKind::kConstant, SignalKind::kSinusoid, SignalKind::kAr1,
        SignalKind::kRandomWalk, SignalKind::kPiecewise}) {
    if (name == SignalKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown signal kind: " + std::string(name));
}

Status ValidateEngineConfig(const EngineConfig& config) {
  PerturberOptions options;
  options.epsilon = config.epsilon;
  options.window = config.window;
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options));
  if (config.num_users < 1) {
    return Status::InvalidArgument("num_users must be >= 1");
  }
  if (config.num_slots < 1) {
    return Status::InvalidArgument("num_slots must be >= 1");
  }
  if (config.dims < 1) {
    return Status::InvalidArgument("dims must be >= 1");
  }
  if (config.dims > kWireMaxDims) {
    return Status::InvalidArgument(
        "dims must be <= " + std::to_string(kWireMaxDims) +
        " (the wire codec's dimension bound)");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = auto)");
  }
  if (config.chunk_size < 1) {
    return Status::InvalidArgument("chunk_size must be >= 1");
  }
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.smoothing_window < 0 ||
      (config.smoothing_window != 0 && config.smoothing_window % 2 == 0)) {
    return Status::InvalidArgument(
        "smoothing_window must be odd, or 0 for the algorithm default");
  }
  if (config.analytics.enabled && config.analytics.histogram_buckets < 2) {
    return Status::InvalidArgument(
        "analytics.histogram_buckets must be >= 2");
  }
  CAPP_RETURN_IF_ERROR(ValidateTransportOptions(config.transport));
  if (config.transport.owned_shards && config.keep_streams) {
    return Status::InvalidArgument(
        "owned_shards runs the collector in aggregate-only single-writer "
        "mode; set keep_streams = false");
  }
  if (config.durability.enabled()) {
    WalOptions wal;
    wal.dir = config.durability.dir;
    wal.fsync_policy = config.durability.fsync_policy;
    wal.fsync_every_frames = config.durability.fsync_every_frames;
    wal.fsync_interval_ms = config.durability.fsync_interval_ms;
    CAPP_RETURN_IF_ERROR(ValidateWalOptions(wal));
    if (config.durability.checkpoint_every_runs > 0 &&
        config.keep_streams) {
      return Status::InvalidArgument(
          "checkpoints cover aggregate-only collectors; set keep_streams "
          "= false or checkpoint_every_runs = 0");
    }
    if (config.transport.kind == TransportKind::kSocket &&
        (!config.transport.socket_path.empty() ||
         !config.transport.tcp_host.empty())) {
      // With an external collector the reports never reach this
      // process's backend, so a local WAL would log nothing. The
      // collector_server process owns durability there (--wal-dir).
      return Status::InvalidArgument(
          "durability lives in the collector process; pass --wal-dir to "
          "collector_server instead of configuring a fleet-side WAL "
          "over an external socket");
    }
  }
  if (config.transport.kind != TransportKind::kDirect &&
      config.num_slots * config.dims > kWireMaxRunLength) {
    // A fleet device uploads its whole stream (all dims * slots doubles)
    // as one run; the queued transports cap a run at the wire codec's
    // frame limit. Reject at validation rather than CHECK-failing
    // mid-run.
    return Status::InvalidArgument(
        "queued transports carry at most " +
        std::to_string(kWireMaxRunLength) +
        " doubles (slots x dims) per user run; lower num_slots/dims or "
        "use kDirect");
  }
  return Status::OK();
}

uint64_t EngineConfigFingerprint(const EngineConfig& config) {
  std::vector<uint64_t> words = {
      static_cast<uint64_t>(config.algorithm),
      std::bit_cast<uint64_t>(config.epsilon),
      static_cast<uint64_t>(config.window),
      static_cast<uint64_t>(config.num_users),
      static_cast<uint64_t>(config.num_slots),
      static_cast<uint64_t>(config.signal),
      config.seed,
      static_cast<uint64_t>(config.num_shards),
      config.keep_streams ? 1u : 0u,
      config.analytics.enabled ? 1u : 0u,
      static_cast<uint64_t>(config.analytics.histogram_buckets),
      static_cast<uint64_t>(config.smoothing_window),
  };
  if (config.dims > 1) {
    // Appended only for multi-dimensional configs, so every d=1
    // fingerprint -- and with it every existing WAL segment, checkpoint,
    // and committed baseline -- is unchanged by the dims extension.
    words.push_back(static_cast<uint64_t>(config.dims));
    words.push_back(static_cast<uint64_t>(config.multidim_strategy));
  }
  return WalFingerprint(words);
}

uint64_t StreamHandshakeFingerprint(double epsilon, int window, size_t dims,
                                    MultidimStrategy strategy) {
  // Deliberately narrower than EngineConfigFingerprint: a collector can
  // serve fleets of any size, signal, or seed, but budget and report
  // shape must agree or the aggregates mean nothing. Mirrors the d=1
  // compatibility trick above: dims/strategy are appended only for
  // multi-dimensional streams.
  std::vector<uint64_t> words = {
      std::bit_cast<uint64_t>(epsilon),
      static_cast<uint64_t>(window),
  };
  if (dims > 1) {
    words.push_back(static_cast<uint64_t>(dims));
    words.push_back(static_cast<uint64_t>(strategy));
  }
  return WalFingerprint(words);
}

std::string EngineStats::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%zu users x %zu slots: %zu reports in %.2fs (%.0f "
                "reports/s, %zu threads), slot-mean MSE %.3e, digest %016llx",
                users, slots, reports, elapsed_seconds, reports_per_sec,
                threads, mean_slot_mse,
                static_cast<unsigned long long>(stream_digest));
  std::string out = buffer;
  if (dims > 1) {
    out += ", ";
    out += std::to_string(dims);
    out += " dims";
  }
  if (owned_shards) {
    out += ", owned shards (";
    out += std::to_string(seqlock_read_retries);
    out += " seqlock retries)";
  }
  return out;
}

}  // namespace capp
