#include "engine/engine_config.h"

#include <cstdio>

#include "algorithms/perturber.h"
#include "transport/wire_format.h"

namespace capp {

std::string_view SignalKindName(SignalKind kind) {
  switch (kind) {
    case SignalKind::kConstant:
      return "constant";
    case SignalKind::kSinusoid:
      return "sinusoid";
    case SignalKind::kAr1:
      return "ar1";
    case SignalKind::kRandomWalk:
      return "walk";
    case SignalKind::kPiecewise:
      return "piecewise";
  }
  return "unknown";
}

Result<SignalKind> ParseSignalKind(std::string_view name) {
  for (SignalKind kind :
       {SignalKind::kConstant, SignalKind::kSinusoid, SignalKind::kAr1,
        SignalKind::kRandomWalk, SignalKind::kPiecewise}) {
    if (name == SignalKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown signal kind: " + std::string(name));
}

Status ValidateEngineConfig(const EngineConfig& config) {
  PerturberOptions options;
  options.epsilon = config.epsilon;
  options.window = config.window;
  CAPP_RETURN_IF_ERROR(ValidatePerturberOptions(options));
  if (config.num_users < 1) {
    return Status::InvalidArgument("num_users must be >= 1");
  }
  if (config.num_slots < 1) {
    return Status::InvalidArgument("num_slots must be >= 1");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0 (0 = auto)");
  }
  if (config.chunk_size < 1) {
    return Status::InvalidArgument("chunk_size must be >= 1");
  }
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.smoothing_window < 0 ||
      (config.smoothing_window != 0 && config.smoothing_window % 2 == 0)) {
    return Status::InvalidArgument(
        "smoothing_window must be odd, or 0 for the algorithm default");
  }
  if (config.analytics.enabled && config.analytics.histogram_buckets < 2) {
    return Status::InvalidArgument(
        "analytics.histogram_buckets must be >= 2");
  }
  CAPP_RETURN_IF_ERROR(ValidateTransportOptions(config.transport));
  if (config.transport.kind != TransportKind::kDirect &&
      config.num_slots > kWireMaxRunLength) {
    // A fleet device uploads its whole stream as one run; the queued
    // transports cap a run at the wire codec's frame limit. Reject at
    // validation rather than CHECK-failing mid-run.
    return Status::InvalidArgument(
        "queued transports carry at most " +
        std::to_string(kWireMaxRunLength) +
        " slots per user run; lower num_slots or use kDirect");
  }
  return Status::OK();
}

std::string EngineStats::ToString() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%zu users x %zu slots: %zu reports in %.2fs (%.0f "
                "reports/s, %zu threads), slot-mean MSE %.3e, digest %016llx",
                users, slots, reports, elapsed_seconds, reports_per_sec,
                threads, mean_slot_mse,
                static_cast<unsigned long long>(stream_digest));
  return buffer;
}

}  // namespace capp
