// Fleet: a thread-pool-driven simulator of the paper's many-device
// deployment (Fig. 1) at population scale.
//
// A Fleet owns one simulated population. Each user is an independent
// UserSession whose RNG seeds are derived from (fleet seed, user id) with
// splitmix64, so a user's perturbed stream is a pure function of the config
// -- never of thread scheduling. The population is split into fixed-size
// chunks of users; worker threads claim chunks, advance every session in
// the chunk slot-by-slot, and deliver the resulting reports to the sharded
// collector through per-thread ReportBatches. Per-chunk accumulators are
// reduced in chunk order afterwards, so the reported statistics (and the
// published-stream digest) are bit-identical for any thread count.
#ifndef CAPP_ENGINE_FLEET_H_
#define CAPP_ENGINE_FLEET_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "engine/engine_config.h"
#include "engine/sharded_collector.h"
#include "storage/durable_collector.h"

namespace capp {

/// Derives the RNG seed for one user's stream from the fleet seed. `stream`
/// distinguishes independent per-user randomness consumers (0 = workload
/// signal, 1 = perturbation). Pure function: the determinism contract.
uint64_t UserStreamSeed(uint64_t fleet_seed, uint64_t user_id,
                        uint64_t stream);

/// Generates one user's true (unperturbed) workload, already in [0, 1].
/// Deterministic given the Rng state.
std::vector<double> GenerateUserSignal(SignalKind kind, size_t num_slots,
                                       Rng& rng);

/// In-place variant: writes the signal into `out` (cleared and refilled,
/// capacity reused). Identical values and RNG consumption; the fleet
/// workers call this once per user on a pooled buffer.
void GenerateUserSignalInto(SignalKind kind, size_t num_slots, Rng& rng,
                            std::vector<double>& out);

/// d-dimensional variant: fills `out` with dims * num_slots doubles,
/// dim-major (dimension k's series at [k * num_slots, (k+1) * num_slots)).
/// dims == 1 is GenerateUserSignalInto exactly -- same values, same RNG
/// consumption. For the sinusoid workload the dimensions are correlated:
/// they share the user's phase draw (each shifted by a fixed per-dimension
/// offset) and one block Gaussian draw covers all dims * num_slots noise
/// samples; other kinds generate the dimensions sequentially from the
/// same RNG.
void GenerateUserSignalMultiInto(SignalKind kind, size_t dims,
                                 size_t num_slots, Rng& rng,
                                 std::vector<double>& out);

/// A simulated population of UserSessions feeding one ShardedCollector.
class Fleet {
 public:
  /// Validates the config (including that the algorithm supports online
  /// per-slot operation) and prepares an empty collector. With
  /// EngineConfig::durability set, any existing WAL/checkpoint state
  /// under durability.dir is recovered into the collector here, before
  /// Run -- a resumed fleet then re-sends every run and the durable
  /// tier's user-id dedup lands each exactly once.
  static Result<Fleet> Create(EngineConfig config);

  /// Simulates the whole fleet over all slots, ingesting every report into
  /// the collector, and returns throughput/accuracy statistics. Run once
  /// per Fleet.
  Result<EngineStats> Run();

  /// The collector that received the fleet's reports (valid after Run).
  const ShardedCollector& collector() const { return *collector_; }

  /// The ingest seam the fleet's reports go through: the durable
  /// decorator when durability is on, the collector itself otherwise.
  CollectorBackend& backend() {
    return durable_ != nullptr
               ? static_cast<CollectorBackend&>(*durable_)
               : static_cast<CollectorBackend&>(*collector_);
  }

  const EngineConfig& config() const { return config_; }

  /// The collector-side SMA window in effect (config override or the
  /// algorithm's recommendation).
  int smoothing_window() const { return smoothing_window_; }

 private:
  Fleet(EngineConfig config, std::unique_ptr<ShardedCollector> collector,
        int smoothing_window);

  EngineConfig config_;
  // Heap-held so the durable decorator's backend pointer stays valid
  // when the Fleet itself is moved out of Create's Result.
  std::unique_ptr<ShardedCollector> collector_;
  std::unique_ptr<DurableCollector> durable_;  // null when durability off
  int smoothing_window_;
  bool ran_ = false;
};

}  // namespace capp

#endif  // CAPP_ENGINE_FLEET_H_
