// Per-thread report staging buffer.
//
// Fleet workers never touch the collector's shard locks on the per-report
// hot path: each worker accumulates reports locally and hands the collector
// a whole batch at a time (ShardedCollector::IngestBatch groups the batch
// by shard and takes each shard lock once). With the default capacity a
// worker amortizes lock traffic over thousands of reports.
#ifndef CAPP_ENGINE_REPORT_BATCH_H_
#define CAPP_ENGINE_REPORT_BATCH_H_

#include <vector>

#include "engine/sharded_collector.h"
#include "stream/report.h"

namespace capp {

/// Buffers reports and flushes them to a (non-owned) ShardedCollector when
/// full or on destruction. One instance per worker thread; not thread-safe.
class ReportBatch {
 public:
  explicit ReportBatch(ShardedCollector* collector, size_t capacity = 8192)
      : collector_(collector), capacity_(capacity) {
    buffer_.reserve(capacity_);
  }

  ReportBatch(const ReportBatch&) = delete;
  ReportBatch& operator=(const ReportBatch&) = delete;

  ~ReportBatch() { Flush(); }

  /// Stages one report, flushing to the collector when the buffer is full.
  void Add(const SlotReport& report) {
    buffer_.push_back(report);
    if (buffer_.size() >= capacity_) Flush();
  }

  /// Delivers all staged reports to the collector.
  void Flush() {
    if (buffer_.empty()) return;
    collector_->IngestBatch(buffer_);
    buffer_.clear();
  }

  /// Reports staged but not yet delivered.
  size_t pending() const { return buffer_.size(); }

 private:
  ShardedCollector* collector_;
  size_t capacity_;
  std::vector<SlotReport> buffer_;
};

}  // namespace capp

#endif  // CAPP_ENGINE_REPORT_BATCH_H_
