#include "engine/fleet.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <utility>

#include "core/check.h"
#include "core/math_utils.h"
#include "data/generators.h"
#include "engine/report_batch.h"
#include "engine/thread_pool.h"
#include "stream/session.h"
#include "stream/smoothing.h"

namespace capp {
namespace {

// FNV-1a over one user's published stream. XORing these per-user hashes
// into the fleet digest is order-independent, which is what lets runs with
// different thread counts be compared bit-for-bit.
uint64_t HashPublishedStream(uint64_t user_id,
                             std::span<const double> stream) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (8 * byte)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(user_id);
  for (double x : stream) mix(std::bit_cast<uint64_t>(x));
  return h;
}

// Per-chunk accumulators, reduced in chunk order after the parallel phase.
struct ChunkSums {
  std::vector<double> true_sum;
  std::vector<double> report_sum;
  uint64_t digest = 0;
  size_t reports = 0;
};

}  // namespace

uint64_t UserStreamSeed(uint64_t fleet_seed, uint64_t user_id,
                        uint64_t stream) {
  return SplitMix64Mix(SplitMix64Mix(fleet_seed ^ SplitMix64Mix(user_id)) +
                       stream);
}

std::vector<double> GenerateUserSignal(SignalKind kind, size_t num_slots,
                                       Rng& rng) {
  switch (kind) {
    case SignalKind::kConstant:
      return ConstantSeries(num_slots, rng.Uniform(0.3, 0.7));
    case SignalKind::kSinusoid: {
      // A shared daily cycle with per-user phase jitter and sensor noise.
      std::vector<double> xs = SinusoidSeries(
          num_slots, /*period=*/24.0, /*amplitude=*/0.15, /*offset=*/0.5,
          /*phase=*/rng.Uniform(-0.5, 0.5));
      for (double& x : xs) x = Clamp(x + rng.Gaussian(0.0, 0.03), 0.0, 1.0);
      return xs;
    }
    case SignalKind::kAr1: {
      std::vector<double> xs =
          Ar1Series(num_slots, /*phi=*/0.9, /*sigma=*/0.05, /*mean=*/0.5,
                    rng);
      for (double& x : xs) x = Clamp(x, 0.0, 1.0);
      return xs;
    }
    case SignalKind::kRandomWalk:
      return ReflectedRandomWalk(num_slots, /*sigma=*/0.05,
                                 /*x0=*/rng.Uniform(0.2, 0.8), rng);
    case SignalKind::kPiecewise: {
      static constexpr double kLevels[] = {0.1, 0.35, 0.65, 0.9};
      return PiecewiseConstantSeries(num_slots, /*min_run=*/5,
                                     /*max_run=*/20, kLevels, rng);
    }
  }
  CAPP_CHECK(false);  // Unreachable: all kinds handled above.
  return {};
}

Fleet::Fleet(EngineConfig config, ShardedCollector collector,
             int smoothing_window)
    : config_(std::move(config)),
      collector_(std::move(collector)),
      smoothing_window_(smoothing_window) {}

Result<Fleet> Fleet::Create(EngineConfig config) {
  CAPP_RETURN_IF_ERROR(ValidateEngineConfig(config));
  // Probe the algorithm once: rejects sampling-only kinds and yields the
  // publication smoothing recommendation.
  PerturberOptions options{config.epsilon, config.window};
  CAPP_ASSIGN_OR_RETURN(auto probe, CreatePerturber(config.algorithm,
                                                    options));
  if (!probe->supports_online()) {
    return Status::InvalidArgument(
        "fleet devices need an online algorithm; sampling kinds perturb "
        "whole subsequences");
  }
  const int smoothing = config.smoothing_window != 0
                            ? config.smoothing_window
                            : probe->publication_smoothing_window();
  ShardedCollectorOptions collector_options;
  collector_options.num_shards = config.num_shards;
  collector_options.keep_streams = config.keep_streams;
  CAPP_ASSIGN_OR_RETURN(ShardedCollector collector,
                        ShardedCollector::Create(collector_options));
  return Fleet(std::move(config), std::move(collector), smoothing);
}

Result<EngineStats> Fleet::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Fleet::Run may be called only once");
  }
  ran_ = true;

  const size_t users = config_.num_users;
  const size_t slots = config_.num_slots;
  const size_t chunk_size = config_.chunk_size;
  const size_t num_chunks = (users + chunk_size - 1) / chunk_size;
  const int threads =
      static_cast<int>(std::min<size_t>(ResolveThreadCount(
                                            config_.num_threads),
                                        num_chunks));

  std::vector<ChunkSums> chunk_sums(num_chunks);
  const auto start = std::chrono::steady_clock::now();

  ParallelFor(num_chunks, threads, [&](size_t chunk) {
    const uint64_t begin = chunk * chunk_size;
    const uint64_t end =
        std::min<uint64_t>(users, begin + chunk_size);
    ChunkSums& sums = chunk_sums[chunk];
    sums.true_sum.assign(slots, 0.0);
    sums.report_sum.assign(slots, 0.0);
    ReportBatch batch(&collector_);
    std::vector<double> report_values(slots);

    for (uint64_t uid = begin; uid < end; ++uid) {
      Rng signal_rng(UserStreamSeed(config_.seed, uid, 0));
      const std::vector<double> truth =
          GenerateUserSignal(config_.signal, slots, signal_rng);
      auto session =
          UserSession::Create(uid, config_.algorithm,
                              {config_.epsilon, config_.window},
                              UserStreamSeed(config_.seed, uid, 1));
      CAPP_CHECK(session.ok());  // Config was validated in Create.
      for (size_t t = 0; t < slots; ++t) {
        const SlotReport report = session->Report(truth[t]);
        report_values[t] = report.value;
        sums.true_sum[t] += truth[t];
        sums.report_sum[t] += report.value;
        batch.Add(report);
      }
      sums.reports += slots;
      auto published = SimpleMovingAverage(report_values, smoothing_window_);
      CAPP_CHECK(published.ok());
      sums.digest ^= HashPublishedStream(uid, *published);
    }
    // ReportBatch flushes on destruction.
  });

  const auto stop = std::chrono::steady_clock::now();

  // Sequential reduction in chunk order: chunk boundaries depend only on
  // chunk_size, so these sums are independent of the thread count.
  std::vector<double> true_mean(slots, 0.0);
  std::vector<double> report_mean(slots, 0.0);
  EngineStats stats;
  for (const ChunkSums& sums : chunk_sums) {
    for (size_t t = 0; t < slots; ++t) {
      true_mean[t] += sums.true_sum[t];
      report_mean[t] += sums.report_sum[t];
    }
    stats.stream_digest ^= sums.digest;
    stats.reports += sums.reports;
  }
  const double inv_users = 1.0 / static_cast<double>(users);
  for (size_t t = 0; t < slots; ++t) {
    true_mean[t] *= inv_users;
    report_mean[t] *= inv_users;
  }
  // The published population mean: SMA is linear, so smoothing the mean of
  // the raw reports equals the mean of the per-user smoothed streams.
  auto published_mean = SimpleMovingAverage(report_mean, smoothing_window_);
  CAPP_CHECK(published_mean.ok());

  KahanSum mse;
  KahanSum mae;
  for (size_t t = 0; t < slots; ++t) {
    const double err = (*published_mean)[t] - true_mean[t];
    mse.Add(err * err);
    mae.Add(std::fabs(err));
  }

  stats.users = users;
  stats.slots = slots;
  stats.threads = static_cast<size_t>(threads);
  stats.chunks = num_chunks;
  stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  stats.reports_per_sec =
      stats.elapsed_seconds > 0.0
          ? static_cast<double>(stats.reports) / stats.elapsed_seconds
          : 0.0;
  stats.mean_slot_mse = mse.Total() / static_cast<double>(slots);
  stats.mean_abs_error = mae.Total() / static_cast<double>(slots);
  stats.true_slot_means = std::move(true_mean);
  stats.published_slot_means = std::move(*published_mean);
  return stats;
}

}  // namespace capp
