#include "engine/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numbers>
#include <optional>
#include <utility>

#include "analysis/streaming_analytics.h"
#include "core/check.h"
#include "core/math_utils.h"
#include "core/stream_digest.h"
#include "data/generators.h"
#include "engine/thread_pool.h"
#include "stream/session.h"
#include "stream/smoothing.h"
#include "telemetry/instruments.h"
#include "telemetry/metrics.h"
#include "transport/transport_hub.h"

namespace capp {
namespace {

// Per-chunk accumulators, reduced in chunk order after the parallel phase.
struct ChunkSums {
  std::vector<double> true_sum;
  std::vector<double> report_sum;
  uint64_t digest = 0;
  size_t reports = 0;
};

// Shared base angles of the sinusoid workload: sin/cos(2*pi*t/period) for
// every slot, cached per thread. The per-user series is then one sincos of
// the user's phase plus two multiply-adds per slot (angle addition),
// instead of a libm sin call per (user, slot) -- which profiling showed
// was the single largest per-report cost after the perturbation hot path
// was batched. The identity is exact in real arithmetic; the generated
// signal can differ from naive per-slot sin evaluation in the last ulp,
// identically for every thread count and for the scalar and batched
// perturbation paths (the workload is input data, generated before either
// path runs).
struct SinusoidBase {
  size_t n = 0;
  double period = 0.0;
  std::vector<double> sin_base;
  std::vector<double> cos_base;

  void Ensure(size_t num_slots, double new_period) {
    if (n == num_slots && period == new_period) return;
    sin_base.resize(num_slots);
    cos_base.resize(num_slots);
    for (size_t t = 0; t < num_slots; ++t) {
      const double angle =
          2.0 * std::numbers::pi * static_cast<double>(t) / new_period;
      sin_base[t] = std::sin(angle);
      cos_base[t] = std::cos(angle);
    }
    n = num_slots;
    period = new_period;
  }
};

}  // namespace

uint64_t UserStreamSeed(uint64_t fleet_seed, uint64_t user_id,
                        uint64_t stream) {
  return SplitMix64Mix(SplitMix64Mix(fleet_seed ^ SplitMix64Mix(user_id)) +
                       stream);
}

std::vector<double> GenerateUserSignal(SignalKind kind, size_t num_slots,
                                       Rng& rng) {
  std::vector<double> out;
  GenerateUserSignalInto(kind, num_slots, rng, out);
  return out;
}

void GenerateUserSignalInto(SignalKind kind, size_t num_slots, Rng& rng,
                            std::vector<double>& out) {
  switch (kind) {
    case SignalKind::kConstant:
      ConstantSeriesInto(num_slots, rng.Uniform(0.3, 0.7), out);
      return;
    case SignalKind::kSinusoid: {
      // A shared daily cycle with per-user phase jitter and sensor noise:
      // 0.5 + 0.15 * sin(2*pi*t/24 + phase) + N(0, 0.03), clamped. The
      // sin(a + phase) term expands over the cached base angles (see
      // SinusoidBase above); the RNG draw order (phase, then one Gaussian
      // per slot) is part of the workload's determinism contract.
      constexpr double kPeriod = 24.0;
      constexpr double kAmplitude = 0.15;
      constexpr double kOffset = 0.5;
      thread_local SinusoidBase base;
      base.Ensure(num_slots, kPeriod);
      const double phase = rng.Uniform(-0.5, 0.5);
      const double sin_phase = std::sin(phase);
      const double cos_phase = std::cos(phase);
      // The per-slot noise is block-generated into `out` (Rng::FillGaussian
      // pins the scalar draw order, so the phase-then-per-slot-noise
      // contract is unchanged), and 0.03 * g reproduces
      // rng.Gaussian(0.0, 0.03) bit-for-bit. With the RNG out of the loop,
      // the angle-addition + clamp body vectorizes.
      out.resize(num_slots);
      rng.FillGaussian(out);
      for (size_t t = 0; t < num_slots; ++t) {
        const double wave =
            base.sin_base[t] * cos_phase + base.cos_base[t] * sin_phase;
        out[t] = Clamp(kOffset + kAmplitude * wave + 0.03 * out[t], 0.0, 1.0);
      }
      return;
    }
    case SignalKind::kAr1: {
      Ar1SeriesInto(num_slots, /*phi=*/0.9, /*sigma=*/0.05, /*mean=*/0.5,
                    rng, out);
      for (double& x : out) x = Clamp(x, 0.0, 1.0);
      return;
    }
    case SignalKind::kRandomWalk:
      ReflectedRandomWalkInto(num_slots, /*sigma=*/0.05,
                              /*x0=*/rng.Uniform(0.2, 0.8), rng, out);
      return;
    case SignalKind::kPiecewise: {
      static constexpr double kLevels[] = {0.1, 0.35, 0.65, 0.9};
      PiecewiseConstantSeriesInto(num_slots, /*min_run=*/5,
                                  /*max_run=*/20, kLevels, rng, out);
      return;
    }
  }
  CAPP_CHECK(false);  // Unreachable: all kinds handled above.
}

void GenerateUserSignalMultiInto(SignalKind kind, size_t dims,
                                 size_t num_slots, Rng& rng,
                                 std::vector<double>& out) {
  if (dims <= 1) {
    GenerateUserSignalInto(kind, num_slots, rng, out);
    return;
  }
  if (kind == SignalKind::kSinusoid) {
    // The d attributes of one user are correlated readings of the same
    // daily cycle: one phase draw shifted by a fixed per-dimension offset
    // (attribute k leads attribute 0 by 0.35 * k radians), and one block
    // Gaussian draw covering every dimension's noise. The d = 1 slice of
    // this path is exactly GenerateUserSignalInto's sinusoid: same phase
    // draw first, then FillGaussian -- just over a longer block.
    constexpr double kPeriod = 24.0;
    constexpr double kAmplitude = 0.15;
    constexpr double kOffset = 0.5;
    constexpr double kDimPhaseStep = 0.35;
    thread_local SinusoidBase base;
    base.Ensure(num_slots, kPeriod);
    const double phase = rng.Uniform(-0.5, 0.5);
    out.resize(dims * num_slots);
    rng.FillGaussian(out);
    for (size_t k = 0; k < dims; ++k) {
      const double dim_phase =
          phase + kDimPhaseStep * static_cast<double>(k);
      const double sin_phase = std::sin(dim_phase);
      const double cos_phase = std::cos(dim_phase);
      double* run = out.data() + k * num_slots;
      for (size_t t = 0; t < num_slots; ++t) {
        const double wave =
            base.sin_base[t] * cos_phase + base.cos_base[t] * sin_phase;
        run[t] = Clamp(kOffset + kAmplitude * wave + 0.03 * run[t], 0.0, 1.0);
      }
    }
    return;
  }
  // The other workload families are inherently serial in their RNG use;
  // dimension k's series is simply the k-th stream drawn from the user's
  // signal RNG.
  out.resize(dims * num_slots);
  thread_local std::vector<double> dim_series;
  for (size_t k = 0; k < dims; ++k) {
    GenerateUserSignalInto(kind, num_slots, rng, dim_series);
    std::copy(dim_series.begin(), dim_series.end(),
              out.begin() + static_cast<ptrdiff_t>(k * num_slots));
  }
}

Fleet::Fleet(EngineConfig config,
             std::unique_ptr<ShardedCollector> collector,
             int smoothing_window)
    : config_(std::move(config)),
      collector_(std::move(collector)),
      smoothing_window_(smoothing_window) {}

Result<Fleet> Fleet::Create(EngineConfig config) {
  CAPP_RETURN_IF_ERROR(ValidateEngineConfig(config));
  // Probe the algorithm once: rejects sampling-only kinds and yields the
  // publication smoothing recommendation.
  PerturberOptions options{config.epsilon, config.window};
  CAPP_ASSIGN_OR_RETURN(auto probe, CreatePerturber(config.algorithm,
                                                    options));
  if (!probe->supports_online()) {
    return Status::InvalidArgument(
        "fleet devices need an online algorithm; sampling kinds perturb "
        "whole subsequences");
  }
  const int smoothing = config.smoothing_window != 0
                            ? config.smoothing_window
                            : probe->publication_smoothing_window();
  if (config.dims > 1) {
    // Probe the multi-dim wrapper too, so an unsupported (strategy,
    // inner) combination fails here with a real Status instead of
    // CHECK-failing inside a worker thread.
    auto multidim_probe = MultidimPerturber::Create(
        config.dims, config.multidim_strategy, options, config.algorithm);
    if (!multidim_probe.ok()) return multidim_probe.status();
  }
  ShardedCollectorOptions collector_options;
  collector_options.num_shards = config.num_shards;
  collector_options.keep_streams = config.keep_streams;
  collector_options.dims = config.dims;
  // Validation already pinned the sound combination (affinity routing,
  // queued kind, aggregate-only), so the transport's ownership claim
  // translates directly into single-writer collector storage.
  collector_options.single_writer = config.transport.owned_shards;
  if (config.analytics.enabled) {
    // Histogram geometry follows the fleet's per-slot budget, so a
    // StreamingAnalyzer created at the same budget/resolution consumes
    // the collector's bins directly. Budget split spends epsilon /
    // (dims * window) per (dimension, slot) publication; sample split
    // spends the whole epsilon / window on the one dimension it uploads.
    const double per_slot_budget =
        config.dims > 1 &&
                config.multidim_strategy == MultidimStrategy::kBudgetSplit
            ? config.epsilon /
                  (static_cast<double>(config.dims) * config.window)
            : config.epsilon / config.window;
    CAPP_ASSIGN_OR_RETURN(
        collector_options.histogram,
        StreamingAnalyzer::CollectorHistogramOptions(
            per_slot_budget, config.analytics.histogram_buckets));
  }
  CAPP_ASSIGN_OR_RETURN(ShardedCollector collector,
                        ShardedCollector::Create(collector_options));
  if (config.transport.kind == TransportKind::kSocket &&
      config.transport.handshake_fingerprint == 0) {
    // Stamp the budget/shape fingerprint into the socket handshake so a
    // collector configured differently refuses this fleet before any
    // report flows. An explicit nonzero value (tests, cross-version
    // experiments) is left alone.
    config.transport.handshake_fingerprint = StreamHandshakeFingerprint(
        config.epsilon, config.window, config.dims,
        config.multidim_strategy);
  }
  Fleet fleet(std::move(config),
              std::make_unique<ShardedCollector>(std::move(collector)),
              smoothing);
  if (fleet.config_.durability.enabled()) {
    // The durable tier recovers any pre-existing WAL/checkpoint state
    // into the (empty) collector right here, then arms the writer.
    DurableCollectorOptions durable_options;
    durable_options.wal.dir = fleet.config_.durability.dir;
    durable_options.wal.fingerprint = EngineConfigFingerprint(fleet.config_);
    durable_options.wal.fsync_policy = fleet.config_.durability.fsync_policy;
    durable_options.wal.fsync_every_frames =
        fleet.config_.durability.fsync_every_frames;
    durable_options.wal.fsync_interval_ms =
        fleet.config_.durability.fsync_interval_ms;
    durable_options.checkpoint_every_runs =
        fleet.config_.durability.checkpoint_every_runs;
    CAPP_ASSIGN_OR_RETURN(
        fleet.durable_,
        DurableCollector::Create(fleet.collector_.get(), durable_options));
  }
  return fleet;
}

Result<EngineStats> Fleet::Run() {
  if (ran_) {
    return Status::FailedPrecondition("Fleet::Run may be called only once");
  }
  ran_ = true;

  const size_t users = config_.num_users;
  const size_t slots = config_.num_slots;
  const size_t dims = config_.dims;
  // Everything per-slot generalizes to per-cell: a user's run, the chunk
  // accumulators, and the collector's storage all hold dims * slots
  // doubles, dim-major. cells == slots at d = 1, so that path's loop
  // bounds, arithmetic, and digests are untouched.
  const size_t cells = dims * slots;
  const size_t chunk_size = config_.chunk_size;
  const size_t num_chunks = (users + chunk_size - 1) / chunk_size;
  const int threads =
      static_cast<int>(std::min<size_t>(ResolveThreadCount(
                                            config_.num_threads),
                                        num_chunks));

  std::vector<ChunkSums> chunk_sums(num_chunks);
  // The ingest seam: the durable decorator (WAL tee + dedup) when
  // durability is on, the bare collector otherwise.
  CollectorBackend* const ingest = &backend();
  ingest->ReserveUsers(users);
  // kDirect keeps the historical in-place ingest (no hub, no branch cost
  // beyond a null check per user); the queued kinds put the transport tier
  // between workers and collector. Either way the published streams -- and
  // with SlotAggregate's exact sums, the collector aggregates -- are
  // bit-identical.
  std::unique_ptr<TransportHub> hub;
  if (config_.transport.kind != TransportKind::kDirect) {
    CAPP_ASSIGN_OR_RETURN(hub,
                          TransportHub::Create(ingest, config_.transport));
  }
  const auto start = std::chrono::steady_clock::now();

  ParallelFor(num_chunks, threads, [&](size_t chunk) {
    // One timer per chunk (thousands of users), so the cost amortizes to
    // nothing and the histogram still resolves stragglers.
    telemetry::ScopedTimer chunk_timer;
    if (telemetry::Enabled()) {
      chunk_timer.Arm(&telemetry::metrics::FleetChunkSeconds());
    }
    const uint64_t begin = chunk * chunk_size;
    const uint64_t end =
        std::min<uint64_t>(users, begin + chunk_size);
    ChunkSums& sums = chunk_sums[chunk];
    sums.true_sum.assign(cells, 0.0);
    sums.report_sum.assign(cells, 0.0);
    // Pooled per-worker state, reused across every user in the chunk: one
    // session (reseeded per user via ResetForUser -- no perturber or
    // mechanism construction on the per-user path) and preallocated
    // signal/report/smoothing buffers. The per-report hot path is
    // allocation-free after the first user. Multi-dimensional runs pool
    // a MultidimPerturber the same way (reseeded per user), leaving the
    // scalar session untouched.
    auto session = UserSession::Create(begin, config_.algorithm,
                                       {config_.epsilon, config_.window},
                                       /*seed=*/0);
    CAPP_CHECK(session.ok());  // Config was validated in Create.
    std::optional<MultidimPerturber> multidim;
    if (dims > 1) {
      auto created = MultidimPerturber::Create(
          dims, config_.multidim_strategy,
          {config_.epsilon, config_.window}, config_.algorithm);
      CAPP_CHECK(created.ok());  // Probed in Create.
      multidim.emplace(std::move(*created));
    }
    std::vector<double> truth;
    std::vector<double> report_values(cells);
    std::vector<double> published;
    std::vector<double> sma_scratch;
    std::vector<double> dim_row;       // d > 1 only: per-dim SMA staging
    std::vector<double> dim_smoothed;  // d > 1 only
    std::optional<TransportHub::Producer> producer;
    if (hub != nullptr) producer.emplace(hub->MakeProducer());

    for (uint64_t uid = begin; uid < end; ++uid) {
      Rng signal_rng(UserStreamSeed(config_.seed, uid, 0));
      if (dims == 1) {
        GenerateUserSignalInto(config_.signal, slots, signal_rng, truth);
        session->ResetForUser(uid, UserStreamSeed(config_.seed, uid, 1));
        // All of the user's slots go through the batched perturbation
        // pipeline in one call (bit-identical to per-slot Report).
        session->ReportChunk(truth, report_values);
      } else {
        GenerateUserSignalMultiInto(config_.signal, dims, slots, signal_rng,
                                    truth);
        multidim->ResetForUser(UserStreamSeed(config_.seed, uid, 1));
        multidim->PerturbStream(truth, slots, report_values);
      }
      // The device's whole stream is delivered as one run: one shard
      // lookup and lock acquisition per user instead of per-report
      // staging through SlotReport buffers. Queued transports stage the
      // run into a pooled frame instead of touching the collector here.
      // A d-dimensional device's run is its full dim-major block.
      if (producer.has_value()) {
        if (dims == 1) {
          producer->Publish(uid, /*base_slot=*/0, report_values);
        } else {
          producer->Publish(uid, /*base_slot=*/0, dims, report_values);
        }
      } else if (dims == 1) {
        ingest->IngestUserRun(uid, /*base_slot=*/0, report_values);
      } else {
        ingest->IngestUserRun(uid, /*base_slot=*/0, dims, report_values);
      }
      sums.reports += cells;
      if (dims == 1) {
        CAPP_CHECK(SimpleMovingAverageInto(report_values, smoothing_window_,
                                           published, sma_scratch)
                       .ok());
      } else {
        // The collector-side SMA is per attribute: each dim-major row is
        // smoothed independently and the published stream keeps the
        // dim-major layout (it is what the digest hashes).
        published.resize(cells);
        for (size_t k = 0; k < dims; ++k) {
          dim_row.assign(
              report_values.begin() + static_cast<ptrdiff_t>(k * slots),
              report_values.begin() +
                  static_cast<ptrdiff_t>((k + 1) * slots));
          CAPP_CHECK(SimpleMovingAverageInto(dim_row, smoothing_window_,
                                             dim_smoothed, sma_scratch)
                         .ok());
          std::copy(dim_smoothed.begin(), dim_smoothed.end(),
                    published.begin() + static_cast<ptrdiff_t>(k * slots));
        }
      }
      // The digest is one chunk-level hash of the published block
      // (core/stream_digest.h), so the slot-sum accumulation no longer
      // carries a serial hash chain and vectorizes on its own. v1 fused a
      // per-byte FNV chain into this loop to hide the sums in its latency
      // shadow; v2's whole hash costs less than the chain's first word.
      for (size_t t = 0; t < cells; ++t) {
        sums.true_sum[t] += truth[t];
        sums.report_sum[t] += report_values[t];
      }
      sums.digest ^= UserStreamDigest(uid, published);
    }
  });

  EngineStats stats;
  if (hub != nullptr) {
    // Every producer flushed when its chunk lambda returned; Drain pushes
    // the poison pills (or FINs the socket), joins everything, and
    // verifies nothing was lost or saturated. The clock stops after the
    // drain so reports/s measures end-to-end ingest, not just production.
    CAPP_RETURN_IF_ERROR(hub->Drain());
    stats.transport = hub->stats();
  }
  if (durable_ != nullptr) {
    // A run's verdict includes its durability: flush + fdatasync the WAL
    // tail and surface the first append/checkpoint failure, if any.
    CAPP_RETURN_IF_ERROR(durable_->Flush());
    stats.wal = durable_->wal_stats();
  }
  // kDirect has no Drain to fail; surface saturated aggregates just as
  // loudly here (fleet workloads are sanitized to [0, 1], so this only
  // fires when an unnormalized signal slips in).
  stats.owned_shards = collector_->options().single_writer;
  stats.seqlock_read_retries = collector_->seqlock_read_retries();
  stats.aggregate_saturations = collector_->saturated_report_count();
  if (stats.aggregate_saturations > 0) {
    return Status::Internal(
        "collector aggregates saturated " +
        std::to_string(stats.aggregate_saturations) +
        " report(s) beyond +/-2^16; per-slot statistics would be wrong");
  }
  const auto stop = std::chrono::steady_clock::now();

  // Sequential reduction in chunk order: chunk boundaries depend only on
  // chunk_size, so these sums are independent of the thread count.
  std::vector<double> true_mean(cells, 0.0);
  std::vector<double> report_mean(cells, 0.0);
  for (const ChunkSums& sums : chunk_sums) {
    for (size_t t = 0; t < cells; ++t) {
      true_mean[t] += sums.true_sum[t];
      report_mean[t] += sums.report_sum[t];
    }
    stats.stream_digest ^= sums.digest;
    stats.reports += sums.reports;
  }
  const double inv_users = 1.0 / static_cast<double>(users);
  for (size_t t = 0; t < cells; ++t) {
    true_mean[t] *= inv_users;
    report_mean[t] *= inv_users;
  }
  // The published population mean: SMA is linear, so smoothing the mean of
  // the raw reports equals the mean of the per-user smoothed streams. Each
  // attribute's dim-major row is smoothed on its own, matching the
  // per-user publication path above.
  std::vector<double> published_mean(cells);
  stats.per_dim_mse.resize(dims);
  stats.per_dim_mae.resize(dims);
  KahanSum total_mse;
  KahanSum total_mae;
  for (size_t k = 0; k < dims; ++k) {
    const std::vector<double> row(
        report_mean.begin() + static_cast<ptrdiff_t>(k * slots),
        report_mean.begin() + static_cast<ptrdiff_t>((k + 1) * slots));
    auto smoothed = SimpleMovingAverage(row, smoothing_window_);
    CAPP_CHECK(smoothed.ok());
    std::copy(smoothed->begin(), smoothed->end(),
              published_mean.begin() + static_cast<ptrdiff_t>(k * slots));
    KahanSum dim_mse;
    KahanSum dim_mae;
    for (size_t t = 0; t < slots; ++t) {
      const double err =
          published_mean[k * slots + t] - true_mean[k * slots + t];
      const double sq = err * err;
      const double abs = std::fabs(err);
      dim_mse.Add(sq);
      dim_mae.Add(abs);
      total_mse.Add(sq);
      total_mae.Add(abs);
    }
    stats.per_dim_mse[k] = dim_mse.Total() / static_cast<double>(slots);
    stats.per_dim_mae[k] = dim_mae.Total() / static_cast<double>(slots);
  }

  stats.users = users;
  stats.slots = slots;
  stats.dims = dims;
  stats.threads = static_cast<size_t>(threads);
  stats.chunks = num_chunks;
  stats.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  stats.reports_per_sec =
      stats.elapsed_seconds > 0.0
          ? static_cast<double>(stats.reports) / stats.elapsed_seconds
          : 0.0;
  stats.mean_slot_mse = total_mse.Total() / static_cast<double>(cells);
  stats.mean_abs_error = total_mae.Total() / static_cast<double>(cells);
  stats.true_slot_means = std::move(true_mean);
  stats.published_slot_means = std::move(published_mean);
  return stats;
}

}  // namespace capp
